// Logical→physical lowering: the Planner turns a ra::ExprPtr into a
// PhysicalPlan, choosing physical operators per EngineOptions.
//
// Beyond the 1:1 lowering of each algebra node, the planner recognizes:
//   - the textbook division pattern π_A(R) − π_A((π_A(R) × S) − R)
//     (and its equality-division extension) and routes it to a direct
//     division operator — turning the Ω(n²)-intermediate classic plan
//     (Proposition 26) into the O(n) grouping/counting strategy of
//     Section 5;
//   - semijoin-reducible projections π_cols(E1 ⋈_θ E2) with cols drawn
//     from one side, lowered to π_cols(E1 ⋉_θ E2) so the quadratic join
//     intermediate is never materialized;
//   - semijoin nodes, routed to the sa::Semijoin fast kernels.
// Every rewrite is recorded in PhysicalPlan::rewrites.
#ifndef SETALG_ENGINE_PLANNER_H_
#define SETALG_ENGINE_PLANNER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/schema.h"
#include "engine/physical.h"
#include "ra/expr.h"
#include "stats/stats.h"
#include "util/result.h"

namespace setalg::engine {

class SharedPlanCache;   // engine/shared_cache.h
class ResultCache;       // engine/result_cache.h
class CalibrationStore;  // engine/calibration.h

/// Knobs for planning and execution.
struct EngineOptions {
  /// Route the classic division pattern (and its equality variant) to a
  /// direct division operator.
  bool recognize_division = true;

  /// Lower π_cols(E1 ⋈_θ E2) with one-sided cols to π_cols(E1 ⋉_θ E2).
  bool recognize_semijoin_projection = true;

  /// Use the sa::Semijoin specialized kernels for semijoin nodes (the
  /// alternative is the generic reference implementation).
  bool use_fast_semijoin = true;

  /// Algorithm overrides for the pattern-routed operators. Consulted when
  /// `cost_based` is off (or no statistics are available).
  setjoin::DivisionAlgorithm division_algorithm =
      setjoin::DivisionAlgorithm::kHashDivision;
  setjoin::ContainmentAlgorithm containment_algorithm =
      setjoin::ContainmentAlgorithm::kInvertedIndex;
  setjoin::EqualityJoinAlgorithm set_equality_algorithm =
      setjoin::EqualityJoinAlgorithm::kCanonicalHash;

  /// Collect maximal binary-join chains into a join hypergraph and route
  /// them to the worst-case-optimal multiway operator
  /// (engine/multiway.h) when the written binary plan's estimated max
  /// intermediate exceeds the AGM fractional-edge-cover bound (cost-based
  /// mode prices both kernels instead and records the choice). Requires
  /// statistics (Engine::Run supplies them); without stats the chains are
  /// lowered 1:1. Off by default: multiway routing changes plan shape,
  /// so existing baselines opt in explicitly via WithMultiway().
  bool multiway = false;

  /// Pick the algorithm per call site from relation statistics via the
  /// cost model (engine/cost.h) instead of the fixed defaults above.
  /// Requires statistics (Planner::Lower's `stats`, supplied automatically
  /// by Engine::Run); without them the fixed defaults still apply. Every
  /// choice is recorded in PhysicalPlan::choices / PlanStats::choices.
  bool cost_based = false;

  /// Execute plans through the pipelined batch surface (engine/batch.h):
  /// streaming operators pass fixed-size tuple batches to their consumers
  /// instead of materializing at every operator boundary. Results and
  /// PlanStats row counts are identical to the materializing mode (the
  /// differential harness in tests/batch_exec_test.cc enforces this); this
  /// is an execution mode, not a plan choice — the planner and cost model
  /// are unaffected.
  bool batched = false;

  /// Tuples per batch on the batch surface (both execution modes loop it).
  /// Values < 1 are treated as 1.
  std::size_t batch_size = kDefaultBatchSize;

  /// Worker threads for partitioned parallel execution of the division /
  /// set-join / semijoin operators (engine/parallel.h; raq --threads).
  /// 1 (the default) runs everything serial; N > 1 gives each run a fixed
  /// N-wide worker pool and partitions eligible operators N ways by group
  /// key. Like `batched`, this is an execution knob, not a semantics
  /// change: results and per-operator PlanStats row counts are identical
  /// to the serial run (tests/batch_exec_test.cc enforces it at threads
  /// {1, 2, 7}); only PlanStats::threads_used/partitions differ. Under
  /// `cost_based` the planner additionally decides serial vs partitioned
  /// per call site from the inputs' shapes and records the decision in
  /// PlanStats::choices. Values < 1 are treated as 1.
  std::size_t threads = 1;

  /// Plan-cache capacity of the Engine facade, in entries (raq
  /// --plan-cache). 0 (the default) disables the transparent cache:
  /// Engine::Run lowers fresh every call and Engine::Prepare returns
  /// detached handles. N > 0 keeps the N most recently used lowered
  /// plans, keyed on the expression's structure (ra::ExprHash) and the
  /// database's id; a version-vector mismatch re-costs the cached plan
  /// from fresh statistics instead of re-lowering it (PlanStats::cache
  /// reports hit/miss/revalidated/repicked). Like `batched`/`threads`
  /// this is an execution-path knob, never a semantics change: cached
  /// results and per-operator PlanStats row counts are bit-identical to
  /// an uncached run (tests/plan_cache_test.cc enforces it).
  std::size_t plan_cache_entries = 0;

  /// Byte budget for the plan cache's approximate footprint (operators +
  /// key expressions + estimate tables). 0 = bounded by entry count only.
  /// Exceeding it evicts least-recently-used entries; an entry being
  /// executed or held by a PreparedQuery survives its eviction (shared
  /// ownership) — eviction only forgets, it never invalidates.
  std::size_t plan_cache_bytes = 0;

  /// Process-wide striped plan cache shared between engines and threads
  /// (engine/shared_cache.h). When set it takes precedence over the
  /// engine-local cache above for Engine::Run — entries are immutable
  /// and revalidated by replacement, so any number of engines on any
  /// number of threads may share one instance. Prepared handles keep
  /// using the engine-local path (a handle is a session-scoped object).
  /// Excluded from OptionsFingerprint (cache wiring, not semantics).
  std::shared_ptr<SharedPlanCache> shared_plan_cache;

  /// Invalidation-aware result cache (engine/result_cache.h): whole query
  /// results keyed on expression structure × database id × the version
  /// vector of the relations read. Checked before any planning; a hit
  /// replays the stored relation and the producing run's PlanStats with
  /// cache = kResultHit. Shareable across engines and threads. Excluded
  /// from OptionsFingerprint (cache wiring, not semantics).
  std::shared_ptr<ResultCache> result_cache;

  /// Self-tuning cost corrections (engine/calibration.h): the cost model
  /// consults learned output factors, selectivities and the stats
  /// histograms, and Engine::Run feeds each run's estimate/actual pairs
  /// back. Shareable across engines and threads like the caches above —
  /// but unlike them it DOES change which plans get picked, so
  /// OptionsFingerprint mixes its presence.
  std::shared_ptr<CalibrationStore> calibration;

  /// Record one OpStats entry per executed operator (max/total intermediate
  /// sizes are tracked regardless).
  bool collect_node_stats = true;

  /// When non-zero, a run fails (Result error) as soon as any operator
  /// materializes more than this many tuples — a guardrail for serving
  /// workloads that must not buffer quadratic intermediates.
  std::size_t max_intermediate_budget = 0;

  /// The 1:1 lowering with every rewrite and fast kernel disabled —
  /// exactly the legacy ra::Eval semantics, per-node stats included.
  static EngineOptions Reference();

  /// The rewrite-enabled options with statistics-driven algorithm
  /// selection: the planner consults the cost model per call site instead
  /// of the fixed algorithm defaults.
  static EngineOptions CostBased();

  /// The rewrite-enabled options with pipelined batch execution.
  static EngineOptions Batched(std::size_t batch_size = kDefaultBatchSize);

  /// The rewrite-enabled options with pipelined batch execution and an
  /// N-wide worker pool for partitioned operators.
  static EngineOptions Parallel(std::size_t threads,
                                std::size_t batch_size = kDefaultBatchSize);

  // -- Fluent composition ----------------------------------------------------
  // The presets above return a fresh value; these mutators layer knobs on
  // top of any preset without overwriting the rest, so
  // `EngineOptions::CostBased().WithThreads(4).WithMultiway()` reads as the
  // sum of its parts. Each returns a modified copy (value semantics).

  EngineOptions WithThreads(std::size_t n) const {
    EngineOptions o = *this;
    o.threads = n < 1 ? 1 : n;
    return o;
  }

  /// Also turns on batched execution: a batch size only matters on the
  /// pipelined surface.
  EngineOptions WithBatchSize(std::size_t n) const {
    EngineOptions o = *this;
    o.batched = true;
    o.batch_size = n < 1 ? 1 : n;
    return o;
  }

  EngineOptions WithMultiway(bool on = true) const {
    EngineOptions o = *this;
    o.multiway = on;
    return o;
  }

  EngineOptions WithPlanCache(std::size_t entries, std::size_t bytes = 0) const {
    EngineOptions o = *this;
    o.plan_cache_entries = entries;
    o.plan_cache_bytes = bytes;
    return o;
  }

  EngineOptions WithSharedCaches(std::shared_ptr<SharedPlanCache> plans,
                                 std::shared_ptr<ResultCache> results) const {
    EngineOptions o = *this;
    o.shared_plan_cache = std::move(plans);
    o.result_cache = std::move(results);
    return o;
  }

  /// Attaches a calibration store (a fresh one when `store` is null).
  /// Defined in planner.cc — make_shared needs the complete type.
  EngineOptions WithCalibration(
      std::shared_ptr<CalibrationStore> store = nullptr) const;
};

/// Deterministic hash of every EngineOptions field that can change what a
/// lowered plan looks like or what a run produces (rewrites, algorithm
/// defaults, cost_based, execution mode, budgets, stats collection).
/// Cache-wiring fields (plan_cache_*, shared_plan_cache, result_cache)
/// are excluded: they select *where* plans/results are stored, never what
/// they are. The process-wide caches mix this into their keys so engines
/// configured differently can share one cache without exchanging plans.
std::uint64_t OptionsFingerprint(const EngineOptions& options);

/// One re-costable algorithm decision baked into a lowered plan: the call
/// site kind, the logical inputs its cost formulas price, and the operator
/// the decision produced. A cached plan keeps these alive so a
/// version-vector mismatch re-prices the recorded alternatives from fresh
/// statistics — and swaps the operator in place when the decision flips —
/// without ever re-lowering the expression (engine/plan_cache.h).
struct ChoicePoint {
  enum class Kind { kDivision, kSemijoin, kMultiway };
  Kind kind = Kind::kDivision;
  /// The operator this decision built (remapped when a swap rebuilds it).
  const PhysicalOp* op = nullptr;
  /// Logical inputs: dividend/divisor for kDivision, left/right for
  /// kSemijoin. Owned here so estimates survive beyond the lowering.
  ra::ExprPtr left;
  ra::ExprPtr right;
  bool equality = false;  // Division flavor.
  /// Semijoin condition as the cost formulas price it (the planner's
  /// exact inputs, so re-costing reproduces fresh-lowering estimates).
  std::vector<ra::JoinAtom> atoms;
  /// Semijoin condition as baked into the operator — differs from `atoms`
  /// for the mirrored π(⋈) reduction, where the operator's sides are
  /// swapped. A flip rebuilds the operator with these.
  std::vector<ra::JoinAtom> op_atoms;
  const ra::Expr* source = nullptr;  // Logical node the operator mirrors.
  /// The decision currently baked into `op`.
  setjoin::DivisionAlgorithm division_algorithm =
      setjoin::DivisionAlgorithm::kHashDivision;
  SemijoinStrategy semijoin_strategy = SemijoinStrategy::kFastKernel;
  std::size_t partitions = 0;
  /// kMultiway payload: the collected join chain. The routing itself is
  /// structural (like the division-pattern rewrite, revalidation never
  /// un-routes a chain — see plan_cache.cc); these inputs let re-costing
  /// re-price the pinned alternative and repick only the fan-out width.
  /// Leaf relations of the hypergraph, in edge order.
  std::vector<ra::ExprPtr> multiway_inputs;
  /// Per leaf, per column: the 0-based join variable the column binds.
  std::vector<std::vector<std::size_t>> multiway_var_maps;
  std::size_t multiway_num_vars = 0;
  /// Interior nodes of the written binary chain, root last — what
  /// EstimateBinaryJoinChain prices against the AGM bound.
  std::vector<ra::ExprPtr> multiway_interior;
  /// True when the chain was routed to the multiway operator (`op` is the
  /// multiway join); false when the written binary plan was kept.
  bool multiway_routed = false;
  /// Leaf index / 1-based column that binds join variable 0 — the
  /// partitioning key the parallel width is priced on.
  std::size_t multiway_key_leaf = 0;
  std::size_t multiway_key_column = 1;
  /// This decision's slice of PhysicalPlan::choices (first index + count;
  /// 0 when the plan was not cost-based), updated in place on re-cost so
  /// revalidated runs report choices in the exact fresh-lowering order.
  std::size_t first_choice = 0;
  std::size_t num_choices = 0;
  /// Index of this decision's note in PhysicalPlan::rewrites (division
  /// pattern notes name the algorithm, so a repick rewrites the note), or
  /// SIZE_MAX when no note mentions the decision.
  std::size_t rewrite_index = static_cast<std::size_t>(-1);
};

/// A lowered plan plus the planner decisions that shaped it.
struct PhysicalPlan {
  PhysicalOpPtr root;
  std::vector<std::string> rewrites;
  /// Cost-based algorithm selections (empty unless cost_based + stats).
  std::vector<AlgorithmChoice> choices;
  /// Plan-time cost-model predictions per operator (populated whenever
  /// statistics were available at lowering time). The executor copies the
  /// matching prediction into each OpStats entry, so a run's stats read
  /// as estimated-vs-actual pairs.
  std::unordered_map<const PhysicalOp*, CostEstimate> estimates;
  /// Each lowered operator paired with the logical node it reproduces, in
  /// lowering order — what re-costing iterates to refresh `estimates`
  /// from fresh statistics without re-lowering.
  std::vector<std::pair<const PhysicalOp*, ra::ExprPtr>> op_sources;
  /// The re-costable decisions baked into the plan, in lowering order.
  std::vector<ChoicePoint> choice_points;
  /// AGM bound of the first collected join chain (see PlanStats).
  double agm_bound = 0.0;
  bool has_agm_bound = false;

  /// Indented operator tree followed by the rewrite notes.
  std::string ToString() const;
};

/// The rewrite note LowerDivision records for a routed division pattern —
/// shared with plan-cache revalidation, which rewrites the note in place
/// when a repick changes the algorithm the note names.
std::string DivisionRewriteNote(setjoin::DivisionAlgorithm algorithm, bool equality,
                                bool cost_based);

/// The label CostBased() records for an execution-parallelism decision:
/// "partitioned[N]" (N > 1) or "serial".
std::string ParallelChoiceLabel(std::size_t partitions);

/// The rewrite note recorded when a collected join chain is routed to the
/// multiway operator — shared with plan-cache revalidation, which
/// refreshes the AGM figure the note quotes on re-cost.
std::string MultiwayRewriteNote(std::size_t relations, double agm_bound);

/// The choices label for the multiway-vs-binary decision:
/// "multiway[k]" when routed, "binary" when the written plan was kept.
std::string MultiwayChoiceLabel(bool routed, std::size_t relations);

class Planner {
 public:
  explicit Planner(EngineOptions options) : options_(std::move(options)) {}

  /// Validates `expr` against `schema` and lowers it. Never aborts on user
  /// input: schema mismatches come back as Result errors. When `stats` is
  /// non-null the plan is annotated with cost estimates, and cost_based
  /// options select algorithms from them.
  util::Result<PhysicalPlan> Lower(const ra::ExprPtr& expr, const core::Schema& schema,
                                   const stats::StatsProvider* stats = nullptr) const;

 private:
  EngineOptions options_;
};

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_PLANNER_H_
