#include "engine/shared_cache.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace setalg::engine {
namespace {

// Enough stripes that a handful of serving threads rarely share one;
// small enough that aggregating stats() stays trivial.
constexpr std::size_t kStripes = 8;

}  // namespace

std::size_t SharedPlanCache::KeyHash::operator()(const Key& key) const {
  return static_cast<std::size_t>(
      util::HashCombine(util::HashCombine(key.db_id, key.options_fp), key.hash));
}

bool SharedPlanCache::KeyEqual::operator()(const Key& a, const Key& b) const {
  return a.db_id == b.db_id && a.options_fp == b.options_fp && a.hash == b.hash &&
         ra::ExprEqual{}(a.expr, b.expr);
}

SharedPlanCache::SharedPlanCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(std::max<std::size_t>(1, max_entries)),
      max_bytes_(max_bytes),
      num_stripes_(kStripes),
      stripes_(std::make_unique<Stripe[]>(kStripes)) {
  // Each stripe gets an even slice of both budgets (rounded up, so the
  // whole-cache budget is a soft bound within num_stripes entries).
  stripe_max_entries_ = std::max<std::size_t>(1, (max_entries_ + kStripes - 1) / kStripes);
  stripe_max_bytes_ = max_bytes_ == 0 ? 0 : std::max<std::size_t>(1, (max_bytes_ + kStripes - 1) / kStripes);
}

SharedPlanCache::Stripe& SharedPlanCache::StripeFor(const Key& key) const {
  return stripes_[KeyHash{}(key) & (num_stripes_ - 1)];
}

SharedPlanCache::Acquired SharedPlanCache::Acquire(
    const ra::ExprPtr& expr, const core::DatabaseView& db,
    const stats::StatsProvider* stats, const EngineOptions& options) const {
  SETALG_CHECK(expr != nullptr);
  Key key{db.id(), OptionsFingerprint(options), ra::StructuralHash(*expr), expr};
  Stripe& stripe = StripeFor(key);

  SharedPlanPtr resident;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(key);
    if (it == stripe.map.end()) {
      ++stripe.stats.misses;
      return {nullptr, CacheOutcome::kMiss};
    }
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru);
    resident = it->second.entry;
  }

  // Version check outside the lock: the resident entry is immutable, and
  // the view's counters are either frozen (txn::Snapshot) or owned by
  // this thread (a live Database is single-threaded by contract).
  if (stats::VersionsMatch(db, resident->versions)) {
    std::lock_guard<std::mutex> lock(stripe.mu);
    ++stripe.stats.hits;
    return {std::move(resident), CacheOutcome::kHit};
  }

  // Stale: revalidate a private copy. Re-pricing and operator swaps only
  // allocate fresh nodes (PhysicalOps are immutable; RebuildOp copies the
  // spine), so readers still executing the old plan are untouched.
  auto copy = std::make_shared<CachedPlan>(*resident);
  const CacheOutcome outcome = RevalidateCachedPlan(*copy, db, stats, options);
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    ++stripe.stats.revalidations;
    if (outcome == CacheOutcome::kRepicked) ++stripe.stats.repicks;
    // Publish the refreshed entry unless someone replaced it first (then
    // last writer wins — both copies are correct for their versions, and
    // ours is the freshest we know).
    PublishLocked(stripe, std::move(key), copy);
  }
  return {std::move(copy), outcome};
}

SharedPlanPtr SharedPlanCache::Insert(CachedPlanPtr entry,
                                      const EngineOptions& options) const {
  SETALG_CHECK(entry != nullptr);
  SETALG_CHECK(entry->expr != nullptr);
  Key key{entry->db_id, OptionsFingerprint(options), entry->expr_hash, entry->expr};
  Stripe& stripe = StripeFor(key);
  SharedPlanPtr shared = std::move(entry);
  std::lock_guard<std::mutex> lock(stripe.mu);
  return PublishLocked(stripe, std::move(key), std::move(shared));
}

SharedPlanPtr SharedPlanCache::PublishLocked(Stripe& stripe, Key key,
                                             SharedPlanPtr entry) const {
  const auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    stripe.bytes -= it->second.charged_bytes;
    stripe.bytes += entry->approx_bytes;
    it->second.entry = entry;
    it->second.charged_bytes = entry->approx_bytes;
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru);
  } else {
    stripe.lru.push_front(key);
    stripe.bytes += entry->approx_bytes;
    stripe.map.emplace(std::move(key),
                       Node{entry, stripe.lru.begin(), entry->approx_bytes});
  }
  EvictPastBudgetLocked(stripe, stripe_max_entries_, stripe_max_bytes_);
  return entry;
}

void SharedPlanCache::EvictPastBudgetLocked(Stripe& stripe, std::size_t max_entries,
                                            std::size_t max_bytes) {
  while (!stripe.lru.empty() &&
         (stripe.map.size() > max_entries ||
          (max_bytes != 0 && stripe.bytes > max_bytes))) {
    const auto it = stripe.map.find(stripe.lru.back());
    SETALG_CHECK(it != stripe.map.end());
    stripe.bytes -= it->second.charged_bytes;
    stripe.map.erase(it);
    stripe.lru.pop_back();
    ++stripe.stats.evictions;
  }
}

void SharedPlanCache::Clear() const {
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    Stripe& stripe = stripes_[i];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.map.clear();
    stripe.lru.clear();
    stripe.bytes = 0;
  }
}

std::size_t SharedPlanCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    total += stripes_[i].map.size();
  }
  return total;
}

std::size_t SharedPlanCache::bytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    total += stripes_[i].bytes;
  }
  return total;
}

SharedPlanCache::Stats SharedPlanCache::stats() const {
  Stats total;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    const Stats& s = stripes_[i].stats;
    total.hits += s.hits;
    total.misses += s.misses;
    total.revalidations += s.revalidations;
    total.repicks += s.repicks;
    total.evictions += s.evictions;
  }
  return total;
}

}  // namespace setalg::engine
