// The batched (vectorized) execution surface beneath the physical
// operators: fixed-capacity tuple batches and the Open/NextBatch/Close
// iterator contract.
//
// The materializing PhysicalOp::Execute is a thin loop over this surface
// (every operator is implemented batch-at-a-time exactly once), and
// EngineOptions::batched composes the per-operator iterators into a
// pipeline that never materializes the streaming operators' outputs. The
// complexity currency of the paper is unchanged — PlanStats still counts
// the (distinct) tuples each operator produces — and a pipelined run
// buffers one batch per operator edge, plus the blocking operators' state,
// plus an O(distinct output) dedup set on each edge whose stream may
// repeat tuples (projection, union): set semantics is preserved exactly,
// not approximated.
//
// Iterator contract:
//   - Open() is called exactly once before the first NextBatch(); blocking
//     operators may fully consume their build-side inputs here.
//   - NextBatch(out) clears `out` and fills it with up to out.capacity()
//     rows; it returns false exactly when the stream is exhausted and no
//     rows were produced (a true return carries at least one row).
//   - Each input stream is consumed at most once, front to back; operators
//     needing random access materialize internally.
//   - Close() is called exactly once after the last NextBatch().
//   - distinct() advertises that no tuple is emitted twice across the whole
//     stream; consumers use it to skip redundant dedup work.
#ifndef SETALG_ENGINE_BATCH_H_
#define SETALG_ENGINE_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/relation.h"
#include "core/tuple.h"

namespace setalg::engine {

/// The default EngineOptions::batch_size (tuples per batch).
inline constexpr std::size_t kDefaultBatchSize = 1024;

/// A fixed-capacity, row-major buffer of same-arity tuples. Unlike
/// core::Relation it has multiset semantics and never sorts — it is the
/// unit of flow between operators, not a materialized intermediate.
class Batch {
 public:
  Batch() = default;
  Batch(std::size_t arity, std::size_t capacity) { Reset(arity, capacity); }

  /// Re-configures arity/capacity and clears the contents.
  void Reset(std::size_t arity, std::size_t capacity);

  void Clear() {
    values_.clear();
    rows_ = 0;
  }

  std::size_t arity() const { return arity_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return rows_; }
  bool empty() const { return rows_ == 0; }
  bool full() const { return rows_ >= capacity_; }

  /// The i-th row, in insertion order (no normalization).
  core::TupleView row(std::size_t i) const {
    return core::TupleView(values_.data() + i * arity_, arity_);
  }

  /// Appends a row; the batch must not be full.
  void Add(core::TupleView t);

  /// Bulk-appends `rows` tuples stored row-major at `data` (arity must be
  /// non-zero; the batch must have room for all of them).
  void AddRows(const core::Value* data, std::size_t rows);

  /// The flat row-major contents (size() * arity() values).
  const std::vector<core::Value>& values() const { return values_; }

  /// Content bytes currently in the batch (used for
  /// PlanStats::peak_batch_bytes); bounded by capacity() * arity() values.
  std::size_t memory_bytes() const { return values_.size() * sizeof(core::Value); }

 private:
  std::size_t arity_ = 0;
  std::size_t capacity_ = 0;
  std::size_t rows_ = 0;
  std::vector<core::Value> values_;
};

/// Appends every row of `batch` to `out` (same arity).
void AppendBatchTo(const Batch& batch, core::Relation* out);

/// Copies rows [pos, pos + out->capacity()) of a normalized relation into
/// `out` (bulk, memcpy-speed); returns the new position. The shared
/// kernel of every stream-a-relation iterator.
std::size_t StreamRelationRows(const core::Relation& relation, std::size_t pos,
                               Batch* out);

/// The pull-based batch stream interface (see the contract above).
class BatchIterator {
 public:
  virtual ~BatchIterator() = default;

  virtual void Open() = 0;
  virtual bool NextBatch(Batch& out) = 0;
  virtual void Close() = 0;

  /// True when no tuple is emitted twice across the stream's lifetime.
  virtual bool distinct() const { return false; }

  /// Declares that the consumer read this scan stream's relation from
  /// pre-sharded storage instead of draining it (the shard-aligned fast
  /// path, engine/parallel.h): `rows` is the stored relation's size —
  /// exactly what a full drain would have produced. Called between
  /// Open() and Close() in place of any NextBatch() calls. Default no-op;
  /// instrumented pipeline edges account the rows so per-operator
  /// PlanStats stay identical whether or not the stream was bypassed.
  virtual void AccountBypassedScan(std::size_t rows) { (void)rows; }
};

/// Opens `input`, drains it fully into a relation, and closes it.
core::Relation DrainToRelation(BatchIterator* input, std::size_t arity,
                               std::size_t batch_size);

/// Streams a materialized (hence normalized) relation in batches. The
/// relation must outlive and not mutate under the iterator.
class RelationBatchIterator final : public BatchIterator {
 public:
  explicit RelationBatchIterator(const core::Relation* relation)
      : relation_(relation) {}

  void Open() override { pos_ = 0; }
  bool NextBatch(Batch& out) override;
  void Close() override {}
  bool distinct() const override { return true; }  // Normalized storage.

  /// The relation behind the stream — lets consumers that need the whole
  /// input anyway (build sides) borrow it instead of re-copying it
  /// batch-by-batch (see MaterializedInput).
  const core::Relation& relation() const { return *relation_; }

 private:
  const core::Relation* relation_;
  std::size_t pos_ = 0;
};

/// A materialized view of an input stream: borrows the relation behind a
/// plain relation streamer (the materializing Execute path — no copy) or
/// drains the stream into an owned copy (pipelined edges). Either way the
/// stream counts as consumed.
class MaterializedInput {
 public:
  /// `input` must outlive the view when borrowing applies.
  static MaterializedInput From(BatchIterator* input, std::size_t arity,
                                std::size_t batch_size);

  const core::Relation& get() const {
    return borrowed_ != nullptr ? *borrowed_ : owned_;
  }

 private:
  const core::Relation* borrowed_ = nullptr;
  core::Relation owned_{0};
};

/// Pull-one-row cursor over a batch stream: the convenience layer the
/// tuple-at-a-time operator kernels use to consume batched inputs.
class RowCursor {
 public:
  /// `input` must outlive the cursor; `arity` is the stream's tuple width.
  RowCursor(BatchIterator* input, std::size_t arity, std::size_t batch_size)
      : input_(input), batch_(arity, batch_size) {}

  void Open() { input_->Open(); }

  /// Fetches the next row into *row (valid until the next call). Returns
  /// false when the stream is exhausted.
  bool Next(core::TupleView* row) {
    while (pos_ >= batch_.size()) {
      if (done_ || !input_->NextBatch(batch_)) {
        done_ = true;
        return false;
      }
      pos_ = 0;
    }
    *row = batch_.row(pos_++);
    return true;
  }

  void Close() { input_->Close(); }

 private:
  BatchIterator* input_;
  Batch batch_;
  std::size_t pos_ = 0;
  bool done_ = false;
};

/// An incrementally-built set of rows: hash-probed membership/insertion
/// over flat row storage. Backs the streaming dedup filters and the
/// difference operator's build side.
class RowSet {
 public:
  explicit RowSet(std::size_t arity) : arity_(arity) {}

  /// Inserts the row; returns true iff it was not already present.
  bool Insert(core::TupleView row);

  bool Contains(core::TupleView row) const;

  std::size_t size() const { return size_; }

 private:
  core::TupleView StoredRow(std::uint32_t index) const {
    return core::TupleView(values_.data() + static_cast<std::size_t>(index) * arity_,
                           arity_);
  }

  std::size_t arity_;
  std::size_t size_ = 0;
  std::vector<core::Value> values_;  // Inserted rows, flat row-major.
  // Row hash → indices of stored rows with that hash.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets_;
};

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_BATCH_H_
