#include "engine/result_cache.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace setalg::engine {
namespace {

constexpr std::size_t kStripes = 8;

}  // namespace

std::size_t ResultCache::KeyHash::operator()(const Key& key) const {
  return static_cast<std::size_t>(
      util::HashCombine(util::HashCombine(key.db_id, key.options_fp), key.hash));
}

bool ResultCache::KeyEqual::operator()(const Key& a, const Key& b) const {
  return a.db_id == b.db_id && a.options_fp == b.options_fp && a.hash == b.hash &&
         ra::ExprEqual{}(a.expr, b.expr);
}

std::size_t ResultCache::ApproxEntryBytes(const Entry& entry) {
  // Deterministic: the budget needs a reproducible charge, not malloc
  // truth. The stored relation's flat payload dominates by construction.
  std::size_t bytes = sizeof(Entry);
  bytes += entry.relation.flat().size() * sizeof(core::Value);
  bytes += entry.stats.ops.size() * (sizeof(OpStats) + 24);
  for (const auto& rewrite : entry.stats.rewrites) bytes += rewrite.size();
  for (const auto& choice : entry.stats.choices) {
    bytes += choice.site.size() + choice.algorithm.size();
  }
  for (const auto& [name, version] : entry.versions) {
    (void)version;
    bytes += sizeof(std::pair<std::string, std::uint64_t>) + name.size();
  }
  if (entry.expr != nullptr) bytes += entry.expr->NumNodes() * 64;
  return bytes;
}

ResultCache::ResultCache(std::size_t max_entries, std::size_t max_bytes)
    : max_entries_(std::max<std::size_t>(1, max_entries)),
      max_bytes_(max_bytes),
      num_stripes_(kStripes),
      stripes_(std::make_unique<Stripe[]>(kStripes)) {
  stripe_max_entries_ =
      std::max<std::size_t>(1, (max_entries_ + kStripes - 1) / kStripes);
  stripe_max_bytes_ =
      max_bytes_ == 0 ? 0
                      : std::max<std::size_t>(1, (max_bytes_ + kStripes - 1) / kStripes);
}

ResultCache::Stripe& ResultCache::StripeFor(const Key& key) const {
  return stripes_[KeyHash{}(key) & (num_stripes_ - 1)];
}

std::optional<ResultCache::Hit> ResultCache::Lookup(
    const ra::ExprPtr& expr, const core::DatabaseView& db,
    std::uint64_t options_fp) const {
  SETALG_CHECK(expr != nullptr);
  Key key{db.id(), options_fp, ra::StructuralHash(*expr), expr};
  Stripe& stripe = StripeFor(key);

  std::shared_ptr<const Entry> entry;
  {
    std::lock_guard<std::mutex> lock(stripe.mu);
    const auto it = stripe.map.find(key);
    if (it == stripe.map.end()) {
      ++stripe.stats.misses;
      return std::nullopt;
    }
    entry = it->second.entry;
    // Invalidation check under the lock: the view's counters are either
    // frozen (txn::Snapshot) or owned by this thread (a live Database is
    // single-threaded by contract), so the check itself is race-free;
    // the lock makes the erase-on-stale atomic with the lookup.
    if (!stats::VersionsMatch(db, entry->versions)) {
      stripe.bytes -= it->second.charged_bytes;
      stripe.lru.erase(it->second.lru);
      stripe.map.erase(it);
      ++stripe.stats.invalidations;
      ++stripe.stats.misses;
      return std::nullopt;
    }
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru);
    ++stripe.stats.hits;
  }

  Hit hit;
  hit.relation = entry->relation;
  hit.stats = entry->stats;
  hit.stats.cache = CacheOutcome::kResultHit;
  return hit;
}

void ResultCache::Insert(const ra::ExprPtr& expr, std::uint64_t db_id,
                         std::uint64_t options_fp, stats::VersionVector versions,
                         const core::Relation& relation, const PlanStats& stats,
                         PhysicalOpPtr plan_root) const {
  SETALG_CHECK(expr != nullptr);
  auto entry = std::make_shared<Entry>();
  entry->versions = std::move(versions);
  entry->relation = relation;
  entry->stats = stats;
  entry->plan_root = std::move(plan_root);
  entry->expr = expr;
  entry->approx_bytes = ApproxEntryBytes(*entry);

  Key key{db_id, options_fp, ra::StructuralHash(*expr), expr};
  Stripe& stripe = StripeFor(key);
  std::lock_guard<std::mutex> lock(stripe.mu);
  const auto it = stripe.map.find(key);
  if (it != stripe.map.end()) {
    stripe.bytes -= it->second.charged_bytes;
    stripe.bytes += entry->approx_bytes;
    it->second.charged_bytes = entry->approx_bytes;
    it->second.entry = std::move(entry);
    stripe.lru.splice(stripe.lru.begin(), stripe.lru, it->second.lru);
  } else {
    stripe.lru.push_front(key);
    stripe.bytes += entry->approx_bytes;
    const std::size_t charged = entry->approx_bytes;
    stripe.map.emplace(std::move(key),
                       Node{std::move(entry), stripe.lru.begin(), charged});
  }
  ++stripe.stats.insertions;
  EvictPastBudgetLocked(stripe, stripe_max_entries_, stripe_max_bytes_);
}

void ResultCache::EvictPastBudgetLocked(Stripe& stripe, std::size_t max_entries,
                                        std::size_t max_bytes) {
  while (!stripe.lru.empty() &&
         (stripe.map.size() > max_entries ||
          (max_bytes != 0 && stripe.bytes > max_bytes))) {
    const auto it = stripe.map.find(stripe.lru.back());
    SETALG_CHECK(it != stripe.map.end());
    stripe.bytes -= it->second.charged_bytes;
    stripe.map.erase(it);
    stripe.lru.pop_back();
    ++stripe.stats.evictions;
  }
}

void ResultCache::Clear() const {
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    Stripe& stripe = stripes_[i];
    std::lock_guard<std::mutex> lock(stripe.mu);
    stripe.map.clear();
    stripe.lru.clear();
    stripe.bytes = 0;
  }
}

std::size_t ResultCache::size() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    total += stripes_[i].map.size();
  }
  return total;
}

std::size_t ResultCache::bytes() const {
  std::size_t total = 0;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    total += stripes_[i].bytes;
  }
  return total;
}

ResultCache::Stats ResultCache::stats() const {
  Stats total;
  for (std::size_t i = 0; i < num_stripes_; ++i) {
    std::lock_guard<std::mutex> lock(stripes_[i].mu);
    const Stats& s = stripes_[i].stats;
    total.hits += s.hits;
    total.misses += s.misses;
    total.invalidations += s.invalidations;
    total.insertions += s.insertions;
    total.evictions += s.evictions;
  }
  return total;
}

}  // namespace setalg::engine
