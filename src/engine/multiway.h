// The worst-case-optimal multiway join operator (Ngo–Porat–Ré–Rudra's
// generic join, leapfrog-style): joins k relations at once by binding the
// join variables one at a time, intersecting — via sorted per-attribute
// iterators with galloping seeks — every relation that contains the
// current variable. Its intermediate state is only the sorted inputs and
// the output itself, so the materialized footprint is bounded by the AGM
// fractional-edge-cover bound (engine/cost.h) instead of the written
// binary plan's possibly-quadratic intermediates — the paper's
// division dichotomy (Ω(n²) classic plan vs O(n) direct operator)
// generalized to arbitrary join chains.
//
// The operator is implemented once against the engine/batch.h
// Open/NextBatch/Close contract (a blocking operator, like the division
// and set-join kernels), so the materializing, pipelined, and parallel
// executors all run it unchanged. Parallel runs hash-partition every
// input containing join variable 0 by that variable's column
// (setjoin::PartitionOfKey, the engine-wide key-partitioning contract),
// share the rest read-only, and merge the per-partition outputs in
// partition-index order — results and PlanStats row counts are
// bit-identical to the serial kernel.
#ifndef SETALG_ENGINE_MULTIWAY_H_
#define SETALG_ENGINE_MULTIWAY_H_

#include <cstddef>
#include <vector>

#include "engine/physical.h"
#include "ra/expr.h"

namespace setalg::engine {

/// Builds the multiway generic-join operator over `children`.
///
/// `column_vars[i][c]` names the (0-based) join variable bound by column
/// c+1 of child i; `num_vars` is the total variable count. Every variable
/// must be bound by at least one child column. The output has arity
/// `num_vars`, one column per variable in variable order, and contains
/// exactly the variable bindings consistent with every input (a child
/// binding the same variable with two columns contributes only its rows
/// where those columns agree). `partitions` follows the engine-wide
/// contract (see MakeSemiJoin): 0 defers to the run's worker-pool width,
/// 1 pins the operator serial, N forces an N-way fan-out by variable 0.
PhysicalOpPtr MakeMultiwayJoin(std::vector<PhysicalOpPtr> children,
                               std::vector<std::vector<std::size_t>> column_vars,
                               std::size_t num_vars,
                               const ra::Expr* source = nullptr,
                               std::size_t partitions = 0);

}  // namespace setalg::engine

#endif  // SETALG_ENGINE_MULTIWAY_H_
