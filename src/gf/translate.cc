#include "gf/translate.h"

#include <algorithm>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>

#include "util/check.h"
#include "util/str.h"

namespace setalg::gf {
namespace {

// Number of (columns ⊔ constants)^positions mappings we are willing to
// enumerate in one piece expansion — a guard against accidental blow-up.
constexpr std::size_t kMaxPieces = 500000;

std::size_t CheckedPieceCount(std::size_t base, std::size_t exponent) {
  std::size_t count = 1;
  for (std::size_t i = 0; i < exponent; ++i) {
    count *= base;
    SETALG_CHECK_STREAM(count <= kMaxPieces)
        << "piece enumeration too large: " << base << "^" << exponent;
  }
  return count;
}

std::size_t PositionOf(const std::vector<std::string>& vars, const std::string& v) {
  auto it = std::find(vars.begin(), vars.end(), v);
  SETALG_CHECK_STREAM(it != vars.end()) << "variable not in scope: " << v;
  return static_cast<std::size_t>(it - vars.begin()) + 1;  // 1-based.
}

// ---------------------------------------------------------------------------
// C-stored universe.
// ---------------------------------------------------------------------------

ra::ExprPtr UniversePiece(const std::string& relation, std::size_t relation_arity,
                          const std::vector<std::optional<core::Value>>& mapping,
                          const std::vector<std::size_t>& columns) {
  // `mapping[p]` is a constant for constant positions; `columns[p]` is the
  // source column (1-based) for column positions (ignored otherwise).
  std::vector<core::Value> tags;
  for (std::size_t p = 0; p < mapping.size(); ++p) {
    if (mapping[p].has_value()) tags.push_back(*mapping[p]);
  }
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());

  ra::ExprPtr expr = ra::Rel(relation, relation_arity);
  for (core::Value c : tags) expr = ra::Tag(expr, c);
  std::vector<std::size_t> projection;
  projection.reserve(mapping.size());
  for (std::size_t p = 0; p < mapping.size(); ++p) {
    if (mapping[p].has_value()) {
      const std::size_t tag_index = static_cast<std::size_t>(
          std::lower_bound(tags.begin(), tags.end(), *mapping[p]) - tags.begin());
      projection.push_back(relation_arity + tag_index + 1);
    } else {
      projection.push_back(columns[p]);
    }
  }
  return ra::Project(expr, projection);
}

}  // namespace

ra::ExprPtr CStoredUniverse(std::size_t k, const core::Schema& schema,
                            const core::ConstantSet& constants) {
  SETALG_CHECK_STREAM(schema.NumRelations() > 0)
      << "C-stored universe needs a nonempty schema";
  ra::ExprPtr result;
  for (const auto& name : schema.Names()) {
    const std::size_t a = schema.Arity(name);
    CheckedPieceCount(a + constants.size(), k);
    // Odometer over (columns ⊔ constants)^k. Choice index < a means column
    // index+1; otherwise constant constants[index - a].
    std::vector<std::size_t> choice(k, 0);
    const std::size_t base = a + constants.size();
    if (base == 0 && k > 0) continue;  // Arity-0 relation, no constants.
    for (;;) {
      std::vector<std::optional<core::Value>> mapping(k);
      std::vector<std::size_t> columns(k, 0);
      for (std::size_t p = 0; p < k; ++p) {
        if (choice[p] < a) {
          columns[p] = choice[p] + 1;
        } else {
          mapping[p] = constants[choice[p] - a];
        }
      }
      ra::ExprPtr piece = UniversePiece(name, a, mapping, columns);
      result = result == nullptr ? piece : ra::Union(result, piece);
      if (k == 0) break;
      std::size_t p = 0;
      while (p < k && ++choice[p] == base) {
        choice[p] = 0;
        ++p;
      }
      if (p == k) break;
    }
  }
  SETALG_CHECK(result != nullptr);
  return result;
}

// ---------------------------------------------------------------------------
// SA= → GF (Theorem 8 forward).
// ---------------------------------------------------------------------------

namespace {

// An argument slot of the translation: either a GF variable or a constant.
struct Arg {
  static Arg Variable(std::string name) {
    Arg a;
    a.var = std::move(name);
    return a;
  }
  static Arg Constant(core::Value value) {
    Arg a;
    a.is_const = true;
    a.value = value;
    return a;
  }
  bool is_const = false;
  std::string var;
  core::Value value = 0;
};

class SaToGfTranslator {
 public:
  SaToGfTranslator(const core::Schema& schema, core::ConstantSet constants)
      : schema_(schema), constants_(std::move(constants)) {}

  FormulaPtr Translate(const ra::Expr& e, const std::vector<Arg>& args) {
    SETALG_CHECK_EQ(args.size(), e.arity());
    switch (e.kind()) {
      case ra::OpKind::kRelation:
        return TranslateRelation(e, args);
      case ra::OpKind::kUnion:
        return Or(Translate(*e.child(0), args), Translate(*e.child(1), args));
      case ra::OpKind::kDifference:
        return And(Translate(*e.child(0), args), Not(Translate(*e.child(1), args)));
      case ra::OpKind::kProjection:
        return TranslateProjectedMembership(*e.child(0), e.projection(), args);
      case ra::OpKind::kSelection: {
        FormulaPtr inner = Translate(*e.child(0), args);
        return And(std::move(inner), CompareArgs(args[e.selection_i() - 1],
                                                 e.selection_op(),
                                                 args[e.selection_j() - 1]));
      }
      case ra::OpKind::kConstTag: {
        std::vector<Arg> child_args(args.begin(), args.end() - 1);
        FormulaPtr inner = Translate(*e.child(0), child_args);
        return And(std::move(inner),
                   CompareArgs(args.back(), ra::Cmp::kEq, Arg::Constant(e.tag_value())));
      }
      case ra::OpKind::kSemiJoin: {
        FormulaPtr left = Translate(*e.child(0), args);
        // ∃ b̄ ∈ E2 with b̄[j] = args[i] for each (i=j) ∈ θ — which is
        // exactly membership of the selected args in π_{j̄}(E2).
        std::vector<std::size_t> proj;
        std::vector<Arg> selected;
        for (const auto& atom : e.atoms()) {
          SETALG_CHECK(atom.op == ra::Cmp::kEq);
          proj.push_back(atom.right);
          selected.push_back(args[atom.left - 1]);
        }
        FormulaPtr exists =
            TranslateProjectedMembership(*e.child(1), proj, selected);
        return And(std::move(left), std::move(exists));
      }
      case ra::OpKind::kJoin:
        SETALG_CHECK_STREAM(false) << "SaEqToGf requires an SA= expression";
    }
    return False();
  }

 private:
  std::string Fresh() { return util::StrCat("_z", ++fresh_counter_); }

  static FormulaPtr CompareArgs(const Arg& a, ra::Cmp op, const Arg& b) {
    if (!a.is_const && !b.is_const) return VarCmp(a.var, op, b.var);
    if (!a.is_const && b.is_const) return ConstCmp(a.var, op, b.value);
    if (a.is_const && !b.is_const) return ConstCmp(b.var, ra::MirrorCmp(op), a.value);
    // Constant vs constant folds.
    bool holds = false;
    switch (op) {
      case ra::Cmp::kEq:
        holds = a.value == b.value;
        break;
      case ra::Cmp::kNeq:
        holds = a.value != b.value;
        break;
      case ra::Cmp::kLt:
        holds = a.value < b.value;
        break;
      case ra::Cmp::kGt:
        holds = a.value > b.value;
        break;
    }
    return holds ? True() : False();
  }

  // Membership of `args` in the relation named by `e` (base case): place
  // variable args directly in the guard atom, bind constant positions to
  // fresh quantified variables constrained by x=c atoms.
  FormulaPtr TranslateRelation(const ra::Expr& e, const std::vector<Arg>& args) {
    std::vector<std::string> atom_vars(args.size());
    std::vector<std::string> fresh;
    std::vector<FormulaPtr> constraints;
    for (std::size_t p = 0; p < args.size(); ++p) {
      if (args[p].is_const) {
        atom_vars[p] = Fresh();
        fresh.push_back(atom_vars[p]);
        constraints.push_back(ConstCmp(atom_vars[p], ra::Cmp::kEq, args[p].value));
      } else {
        atom_vars[p] = args[p].var;
      }
    }
    FormulaPtr atom = Atom(e.relation_name(), atom_vars);
    if (fresh.empty()) return atom;
    return Exists(std::move(atom), std::move(fresh), AndAll(std::move(constraints)));
  }

  // The workhorse: "some tuple d̄ ∈ E has d̄[proj[j]] = args[j] for all j".
  // Covers projection (π_{proj}(E) membership) and the semijoin existence
  // subformula. Enumerates C-storedness pieces: the witnessing d̄ lives
  // inside one stored tuple T(w̄) plus constants.
  FormulaPtr TranslateProjectedMembership(const ra::Expr& inner,
                                          const std::vector<std::size_t>& proj,
                                          const std::vector<Arg>& args) {
    SETALG_CHECK_EQ(proj.size(), args.size());
    const std::size_t n = inner.arity();
    std::vector<FormulaPtr> pieces;
    for (const auto& relation : schema_.Names()) {
      const std::size_t a = schema_.Arity(relation);
      const std::size_t base = a + constants_.size();
      if (base == 0 && n > 0) continue;
      CheckedPieceCount(base, n);
      std::vector<std::size_t> choice(n, 0);
      for (;;) {
        FormulaPtr piece = BuildPiece(inner, proj, args, relation, a, choice);
        if (piece != nullptr) pieces.push_back(std::move(piece));
        if (n == 0) break;
        std::size_t p = 0;
        while (p < n && ++choice[p] == base) {
          choice[p] = 0;
          ++p;
        }
        if (p == n) break;
      }
    }
    return OrAll(std::move(pieces));
  }

  // One piece: relation T of arity a, mapping encoded by `choice`
  // (choice[p] < a ⇒ column choice[p]+1; otherwise constant). Returns
  // nullptr for inconsistent mappings.
  FormulaPtr BuildPiece(const ra::Expr& inner, const std::vector<std::size_t>& proj,
                        const std::vector<Arg>& args, const std::string& relation,
                        std::size_t a, const std::vector<std::size_t>& choice) {
    const std::size_t n = inner.arity();
    // Per-column state of the guard atom.
    std::vector<std::string> occupant(a);           // Arg variable, if placed.
    std::vector<std::optional<core::Value>> creq(a);  // Required constant.
    std::vector<FormulaPtr> outer;  // Constraints on non-guard arg variables.
    std::vector<Arg> inner_args(n);

    // Projected args constraining position p.
    std::vector<std::vector<const Arg*>> at_position(n);
    for (std::size_t j = 0; j < proj.size(); ++j) {
      at_position[proj[j] - 1].push_back(&args[j]);
    }

    for (std::size_t p = 0; p < n; ++p) {
      if (choice[p] >= a) {
        // Position p maps to a constant.
        const core::Value c = constants_[choice[p] - a];
        for (const Arg* arg : at_position[p]) {
          if (arg->is_const) {
            if (arg->value != c) return nullptr;  // Inconsistent piece.
          } else {
            outer.push_back(ConstCmp(arg->var, ra::Cmp::kEq, c));
          }
        }
        inner_args[p] = Arg::Constant(c);
        continue;
      }
      const std::size_t q = choice[p];  // 0-based column.
      for (const Arg* arg : at_position[p]) {
        if (arg->is_const) {
          if (creq[q].has_value() && *creq[q] != arg->value) return nullptr;
          creq[q] = arg->value;
        } else if (occupant[q].empty()) {
          occupant[q] = arg->var;
        } else if (occupant[q] != arg->var) {
          // Two different arg variables forced equal; only one can occupy
          // the guard slot, the other is constrained outside the guard.
          outer.push_back(VarEq(occupant[q], arg->var));
        }
      }
      inner_args[p] = Arg::Variable(std::string());  // Resolved below.
    }

    // Finalize guard variables and the inner constraints.
    std::vector<std::string> guard_vars(a);
    std::vector<std::string> fresh;
    std::vector<FormulaPtr> inner_constraints;
    for (std::size_t q = 0; q < a; ++q) {
      if (!occupant[q].empty()) {
        guard_vars[q] = occupant[q];
      } else {
        guard_vars[q] = Fresh();
        fresh.push_back(guard_vars[q]);
      }
      if (creq[q].has_value()) {
        inner_constraints.push_back(ConstCmp(guard_vars[q], ra::Cmp::kEq, *creq[q]));
      }
    }
    for (std::size_t p = 0; p < n; ++p) {
      if (!inner_args[p].is_const) {
        inner_args[p] = Arg::Variable(guard_vars[choice[p]]);
      }
    }
    inner_constraints.push_back(Translate(inner, inner_args));

    FormulaPtr guard = Atom(relation, guard_vars);
    FormulaPtr body = AndAll(std::move(inner_constraints));
    FormulaPtr core = fresh.empty() ? And(std::move(guard), std::move(body))
                                    : Exists(std::move(guard), std::move(fresh),
                                             std::move(body));
    return And(AndAll(std::move(outer)), std::move(core));
  }

  const core::Schema& schema_;
  core::ConstantSet constants_;
  int fresh_counter_ = 0;
};

}  // namespace

FormulaPtr SaEqToGf(const ra::ExprPtr& expr, const std::vector<std::string>& vars,
                    const core::Schema& schema) {
  SETALG_CHECK_STREAM(ra::IsSaEq(*expr)) << "SaEqToGf requires an SA= expression";
  SETALG_CHECK_EQ(vars.size(), expr->arity());
  SETALG_CHECK_STREAM(ValidateAgainstSchema(*expr, schema).empty())
      << ValidateAgainstSchema(*expr, schema);
  std::set<std::string> distinct(vars.begin(), vars.end());
  SETALG_CHECK_EQ(distinct.size(), vars.size());
  SaToGfTranslator translator(schema, ra::CollectConstants(*expr));
  std::vector<Arg> args;
  args.reserve(vars.size());
  for (const auto& v : vars) args.push_back(Arg::Variable(v));
  return translator.Translate(*expr, args);
}

// ---------------------------------------------------------------------------
// GF → SA= (Theorem 8 converse).
// ---------------------------------------------------------------------------

namespace {

class GfToSaTranslator {
 public:
  GfToSaTranslator(const core::Schema& schema, core::ConstantSet constants)
      : schema_(schema), constants_(std::move(constants)) {}

  ra::ExprPtr Translate(const Formula& f, const std::vector<std::string>& vars) {
    const std::size_t k = vars.size();
    switch (f.kind()) {
      case FormulaKind::kTrue:
        return Universe(k);
      case FormulaKind::kFalse: {
        ra::ExprPtr u = Universe(k);
        return ra::Diff(u, u);
      }
      case FormulaKind::kVarCompare: {
        const std::size_t i = PositionOf(vars, f.var1());
        const std::size_t j = PositionOf(vars, f.var2());
        ra::ExprPtr u = Universe(k);
        switch (f.cmp()) {
          case ra::Cmp::kEq:
            return ra::SelectEq(u, i, j);
          case ra::Cmp::kLt:
            return ra::SelectLt(u, i, j);
          case ra::Cmp::kGt:
            return ra::SelectLt(u, j, i);
          case ra::Cmp::kNeq:
            return ra::Diff(u, ra::SelectEq(u, i, j));
        }
        return u;
      }
      case FormulaKind::kConstCompare: {
        const std::size_t i = PositionOf(vars, f.var1());
        ra::ExprPtr u = Universe(k);
        // Tag the constant (column k+1), compare, drop the tag.
        ra::ExprPtr tagged = ra::Tag(u, f.constant());
        std::vector<std::size_t> keep(k);
        for (std::size_t p = 0; p < k; ++p) keep[p] = p + 1;
        switch (f.cmp()) {
          case ra::Cmp::kEq:
            return ra::Project(ra::SelectEq(tagged, i, k + 1), keep);
          case ra::Cmp::kLt:
            return ra::Project(ra::SelectLt(tagged, i, k + 1), keep);
          case ra::Cmp::kGt:
            return ra::Project(ra::SelectLt(tagged, k + 1, i), keep);
          case ra::Cmp::kNeq:
            return ra::Project(ra::Diff(tagged, ra::SelectEq(tagged, i, k + 1)), keep);
        }
        return u;
      }
      case FormulaKind::kRelAtom: {
        // Collapse repeated variables with selections on the atom relation,
        // then keep the universe tuples matching it on the shared columns.
        const std::size_t arity = f.atom_vars().size();
        ra::ExprPtr pattern = ra::Rel(f.relation_name(), arity);
        std::map<std::string, std::size_t> first_col;
        for (std::size_t q = 0; q < arity; ++q) {
          const std::string& v = f.atom_vars()[q];
          auto it = first_col.find(v);
          if (it == first_col.end()) {
            first_col[v] = q + 1;
          } else {
            pattern = ra::SelectEq(pattern, it->second, q + 1);
          }
        }
        std::vector<ra::JoinAtom> atoms;
        for (const auto& [v, col] : first_col) {
          atoms.push_back({PositionOf(vars, v), ra::Cmp::kEq, col});
        }
        return ra::SemiJoin(Universe(k), pattern, atoms);
      }
      case FormulaKind::kNot:
        return ra::Diff(Universe(k), Translate(*f.children()[0], vars));
      case FormulaKind::kAnd: {
        ra::ExprPtr a = Translate(*f.children()[0], vars);
        ra::ExprPtr b = Translate(*f.children()[1], vars);
        return ra::Diff(a, ra::Diff(a, b));
      }
      case FormulaKind::kOr:
        return ra::Union(Translate(*f.children()[0], vars),
                         Translate(*f.children()[1], vars));
      case FormulaKind::kImplies:
        return ra::Union(ra::Diff(Universe(k), Translate(*f.children()[0], vars)),
                         Translate(*f.children()[1], vars));
      case FormulaKind::kIff: {
        ra::ExprPtr a = Translate(*f.children()[0], vars);
        ra::ExprPtr b = Translate(*f.children()[1], vars);
        ra::ExprPtr u = Universe(k);
        ra::ExprPtr a_and_b = ra::Diff(a, ra::Diff(a, b));
        ra::ExprPtr neither = ra::Diff(ra::Diff(u, a), b);
        return ra::Union(a_and_b, neither);
      }
      case FormulaKind::kExists: {
        // Scope variables: the guard's distinct variables, in order of
        // first occurrence (guardedness ⇒ they cover the body).
        std::vector<std::string> scope;
        for (const auto& v : f.guard()->atom_vars()) {
          if (std::find(scope.begin(), scope.end(), v) == scope.end()) {
            scope.push_back(v);
          }
        }
        ra::ExprPtr guard_expr = Translate(*f.guard(), scope);
        ra::ExprPtr body_expr = Translate(*f.body(), scope);
        ra::ExprPtr scope_expr =
            ra::Diff(guard_expr, ra::Diff(guard_expr, body_expr));
        // Link the enclosing tuple to the scope tuple on the shared,
        // non-quantified variables.
        const std::set<std::string> quantified(f.quantified().begin(),
                                               f.quantified().end());
        std::vector<ra::JoinAtom> atoms;
        for (std::size_t s = 0; s < scope.size(); ++s) {
          const std::string& v = scope[s];
          if (quantified.count(v) > 0) continue;
          if (std::find(vars.begin(), vars.end(), v) == vars.end()) continue;
          atoms.push_back({PositionOf(vars, v), ra::Cmp::kEq, s + 1});
        }
        return ra::SemiJoin(Universe(k), scope_expr, atoms);
      }
    }
    SETALG_CHECK_STREAM(false) << "unreachable";
    return nullptr;
  }

 private:
  ra::ExprPtr Universe(std::size_t k) {
    auto it = universe_cache_.find(k);
    if (it != universe_cache_.end()) return it->second;
    ra::ExprPtr u = CStoredUniverse(k, schema_, constants_);
    universe_cache_[k] = u;
    return u;
  }

  const core::Schema& schema_;
  core::ConstantSet constants_;
  std::unordered_map<std::size_t, ra::ExprPtr> universe_cache_;
};

}  // namespace

ra::ExprPtr GfToSaEq(const Formula& f, const std::vector<std::string>& vars,
                     const core::Schema& schema,
                     const core::ConstantSet& extra_constants) {
  SETALG_CHECK_STREAM(ValidateGf(f, schema).empty()) << ValidateGf(f, schema);
  for (const auto& v : f.FreeVariables()) {
    SETALG_CHECK_STREAM(std::find(vars.begin(), vars.end(), v) != vars.end())
        << "free variable " << v << " missing from the variable order";
  }
  core::ConstantSet constants = f.Constants();
  constants.insert(constants.end(), extra_constants.begin(), extra_constants.end());
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()), constants.end());
  GfToSaTranslator translator(schema, constants);
  ra::ExprPtr result = translator.Translate(f, vars);
  SETALG_CHECK(ra::IsSaEq(*result));
  return result;
}

}  // namespace setalg::gf
