// Evaluation of guarded-fragment formulas over a database.
//
// Semantics follow the paper: first-order logic interpreted over the
// active domain, with the guard making quantification range over stored
// tuples only (which is also what makes evaluation cheap).
#ifndef SETALG_GF_EVAL_H_
#define SETALG_GF_EVAL_H_

#include <map>
#include <string>
#include <vector>

#include "core/database.h"
#include "gf/formula.h"

namespace setalg::gf {

/// A (partial) variable assignment.
using Assignment = std::map<std::string, core::Value>;

/// True iff D ⊨ f under `assignment`, which must bind every free variable.
bool Holds(const Formula& f, const core::Database& db, const Assignment& assignment);

/// The satisfying C-stored tuples over the given variable order:
/// { d̄ C-stored in D | D ⊨ f(d̄) } — the right-hand side of Theorem 8's
/// converse direction. `vars` must cover the free variables of f.
core::Relation EvaluateCStored(const Formula& f, const core::Database& db,
                               const std::vector<std::string>& vars,
                               const core::ConstantSet& constants);

/// Reference evaluation over an explicit candidate value set: returns all
/// tuples in values^|vars| satisfying f. Exponential; for testing only.
core::Relation EvaluateOverValues(const Formula& f, const core::Database& db,
                                  const std::vector<std::string>& vars,
                                  const std::vector<core::Value>& values);

}  // namespace setalg::gf

#endif  // SETALG_GF_EVAL_H_
