// The guarded fragment GF of first-order logic (Definition 6).
//
// Formulas are built from atoms (x=y, x<y, x~c, R(x̄)), boolean
// connectives, and *guarded* quantification ∃ȳ(α(x̄,ȳ) ∧ φ(x̄,ȳ)) where α
// is a relation atom containing every free variable of φ.
//
// Deviation from the paper's literal Definition 6, documented in DESIGN.md:
// constant-comparison atoms allow <,> as well as = (x<c, x>c). With both
// order and constants in the language this is required for the Theorem 8
// correspondence to hold (SA= can compare a column against a tagged
// constant via σ_{i<j}∘τ_c); correspondingly, C-partial isomorphisms
// (bisim module) preserve order relative to the constants.
#ifndef SETALG_GF_FORMULA_H_
#define SETALG_GF_FORMULA_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/value.h"
#include "ra/expr.h"

namespace setalg::gf {

enum class FormulaKind {
  kTrue,          // ⊤ (internal convenience; definable as x=x under a guard)
  kFalse,         // ⊥
  kVarCompare,    // x op y
  kConstCompare,  // x op c
  kRelAtom,       // R(x1, ..., xk), repeats allowed
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  kExists,  // ∃ȳ(α ∧ φ) with α a relation atom guarding φ
};

class Formula;
using FormulaPtr = std::shared_ptr<const Formula>;

/// Immutable GF formula node. Build via the free functions below.
class Formula {
 public:
  FormulaKind kind() const { return kind_; }

  /// kVarCompare / kConstCompare payloads.
  const std::string& var1() const { return var1_; }
  const std::string& var2() const { return var2_; }
  ra::Cmp cmp() const { return cmp_; }
  core::Value constant() const { return constant_; }

  /// kRelAtom payload.
  const std::string& relation_name() const { return relation_name_; }
  const std::vector<std::string>& atom_vars() const { return atom_vars_; }

  /// Children: 1 for kNot, 2 for binary connectives, body for kExists.
  const std::vector<FormulaPtr>& children() const { return children_; }

  /// kExists payload: the guard atom and the quantified variables.
  const FormulaPtr& guard() const { return guard_; }
  const std::vector<std::string>& quantified() const { return quantified_; }
  const FormulaPtr& body() const { return children_[0]; }

  /// Free variables of the formula.
  std::set<std::string> FreeVariables() const;

  /// Constants mentioned (from x~c atoms), sorted unique.
  core::ConstantSet Constants() const;

  std::string ToString() const;

 private:
  friend class FormulaFactory;
  Formula() = default;

  FormulaKind kind_ = FormulaKind::kTrue;
  std::string var1_, var2_;
  ra::Cmp cmp_ = ra::Cmp::kEq;
  core::Value constant_ = 0;
  std::string relation_name_;
  std::vector<std::string> atom_vars_;
  std::vector<FormulaPtr> children_;
  FormulaPtr guard_;
  std::vector<std::string> quantified_;
};

// ---------------------------------------------------------------------------
// Builders.
// ---------------------------------------------------------------------------

FormulaPtr True();
FormulaPtr False();

/// Atom `x op y` (variables). Definition 6 admits = and <; all four
/// comparators are accepted for convenience (≠, > are definable).
FormulaPtr VarCmp(const std::string& x, ra::Cmp op, const std::string& y);
FormulaPtr VarEq(const std::string& x, const std::string& y);
FormulaPtr VarLt(const std::string& x, const std::string& y);

/// Atom `x op c` (variable against constant).
FormulaPtr ConstCmp(const std::string& x, ra::Cmp op, core::Value c);
FormulaPtr VarEqConst(const std::string& x, core::Value c);

/// Relation atom R(vars...); repeats allowed.
FormulaPtr Atom(const std::string& relation, std::vector<std::string> vars);

FormulaPtr Not(FormulaPtr f);
FormulaPtr And(FormulaPtr a, FormulaPtr b);
FormulaPtr Or(FormulaPtr a, FormulaPtr b);
FormulaPtr Implies(FormulaPtr a, FormulaPtr b);
FormulaPtr Iff(FormulaPtr a, FormulaPtr b);

/// Conjunction / disjunction of a list (empty list ⇒ ⊤ / ⊥).
FormulaPtr AndAll(std::vector<FormulaPtr> fs);
FormulaPtr OrAll(std::vector<FormulaPtr> fs);

/// Guarded quantification ∃quantified (guard ∧ body). `guard` must be a
/// relation atom; every quantified variable and every free variable of
/// `body` must occur in the guard (checked).
FormulaPtr Exists(FormulaPtr guard, std::vector<std::string> quantified,
                  FormulaPtr body);

// ---------------------------------------------------------------------------
// Validation.
// ---------------------------------------------------------------------------

/// Checks Definition 6 well-formedness against a schema: relation atoms
/// exist with matching arity and every quantifier is properly guarded.
/// Returns an error message, or "" if the formula is valid GF.
std::string ValidateGf(const Formula& f, const core::Schema& schema);

}  // namespace setalg::gf

#endif  // SETALG_GF_FORMULA_H_
