#include "gf/eval.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace setalg::gf {
namespace {

bool CompareValues(core::Value a, ra::Cmp op, core::Value b) {
  switch (op) {
    case ra::Cmp::kEq:
      return a == b;
    case ra::Cmp::kNeq:
      return a != b;
    case ra::Cmp::kLt:
      return a < b;
    case ra::Cmp::kGt:
      return a > b;
  }
  return false;
}

core::Value Lookup(const Assignment& assignment, const std::string& var) {
  auto it = assignment.find(var);
  SETALG_CHECK_STREAM(it != assignment.end()) << "unbound variable: " << var;
  return it->second;
}

}  // namespace

bool Holds(const Formula& f, const core::Database& db, const Assignment& assignment) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
      return true;
    case FormulaKind::kFalse:
      return false;
    case FormulaKind::kVarCompare:
      return CompareValues(Lookup(assignment, f.var1()), f.cmp(),
                           Lookup(assignment, f.var2()));
    case FormulaKind::kConstCompare:
      return CompareValues(Lookup(assignment, f.var1()), f.cmp(), f.constant());
    case FormulaKind::kRelAtom: {
      const core::Relation& r = db.relation(f.relation_name());
      core::Tuple t;
      t.reserve(f.atom_vars().size());
      for (const auto& v : f.atom_vars()) t.push_back(Lookup(assignment, v));
      return r.Contains(t);
    }
    case FormulaKind::kNot:
      return !Holds(*f.children()[0], db, assignment);
    case FormulaKind::kAnd:
      return Holds(*f.children()[0], db, assignment) &&
             Holds(*f.children()[1], db, assignment);
    case FormulaKind::kOr:
      return Holds(*f.children()[0], db, assignment) ||
             Holds(*f.children()[1], db, assignment);
    case FormulaKind::kImplies:
      return !Holds(*f.children()[0], db, assignment) ||
             Holds(*f.children()[1], db, assignment);
    case FormulaKind::kIff:
      return Holds(*f.children()[0], db, assignment) ==
             Holds(*f.children()[1], db, assignment);
    case FormulaKind::kExists: {
      // Quantified variables range over the guard relation's tuples.
      const Formula& guard = *f.guard();
      const core::Relation& r = db.relation(guard.relation_name());
      const std::set<std::string> quantified(f.quantified().begin(),
                                             f.quantified().end());
      for (std::size_t row = 0; row < r.size(); ++row) {
        core::TupleView t = r.tuple(row);
        Assignment extended = assignment;
        bool consistent = true;
        // Track per-tuple bindings so repeated quantified variables must
        // agree across guard positions; quantified variables shadow any
        // outer binding of the same name.
        std::set<std::string> bound_here;
        for (std::size_t p = 0; p < guard.atom_vars().size() && consistent; ++p) {
          const std::string& v = guard.atom_vars()[p];
          if (quantified.count(v) > 0) {
            if (bound_here.count(v) > 0) {
              consistent = extended[v] == t[p];
            } else {
              extended[v] = t[p];
              bound_here.insert(v);
            }
          } else {
            consistent = Lookup(assignment, v) == t[p];
          }
        }
        if (consistent && Holds(*f.body(), db, extended)) return true;
      }
      return false;
    }
  }
  return false;
}

core::Relation EvaluateCStored(const Formula& f, const core::Database& db,
                               const std::vector<std::string>& vars,
                               const core::ConstantSet& constants) {
  const auto free_vars = f.FreeVariables();
  for (const auto& v : free_vars) {
    SETALG_CHECK_STREAM(std::find(vars.begin(), vars.end(), v) != vars.end())
        << "free variable " << v << " missing from the variable order";
  }
  const std::size_t k = vars.size();
  core::Relation out(k);

  // Candidate tuples: values drawn from one guarded set plus the constants
  // (exactly the C-stored tuples — Definition 4), enumerated per guarded
  // set and deduplicated by the output relation.
  std::vector<std::vector<core::Value>> pools;
  for (const auto& guarded : db.GuardedSets()) {
    std::vector<core::Value> pool = guarded;
    pool.insert(pool.end(), constants.begin(), constants.end());
    std::sort(pool.begin(), pool.end());
    pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    pools.push_back(std::move(pool));
  }
  if (k == 0) {
    // The empty tuple is C-stored iff some relation is nonempty.
    if (db.IsCStored(core::TupleView(), constants) && Holds(f, db, {})) {
      out.Add(core::Tuple{});
    }
    return out;
  }

  core::Tuple tuple(k);
  Assignment assignment;
  for (const auto& pool : pools) {
    // Odometer over pool^k.
    std::vector<std::size_t> idx(k, 0);
    for (;;) {
      for (std::size_t p = 0; p < k; ++p) tuple[p] = pool[idx[p]];
      if (db.IsCStored(tuple, constants) && !out.Contains(tuple)) {
        assignment.clear();
        for (std::size_t p = 0; p < k; ++p) assignment[vars[p]] = tuple[p];
        if (Holds(f, db, assignment)) out.Add(tuple);
      }
      std::size_t p = 0;
      while (p < k && ++idx[p] == pool.size()) {
        idx[p] = 0;
        ++p;
      }
      if (p == k) break;
    }
  }
  return out;
}

core::Relation EvaluateOverValues(const Formula& f, const core::Database& db,
                                  const std::vector<std::string>& vars,
                                  const std::vector<core::Value>& values) {
  const std::size_t k = vars.size();
  core::Relation out(k);
  if (k == 0) {
    if (Holds(f, db, {})) out.Add(core::Tuple{});
    return out;
  }
  SETALG_CHECK(!values.empty());
  core::Tuple tuple(k);
  Assignment assignment;
  std::vector<std::size_t> idx(k, 0);
  for (;;) {
    for (std::size_t p = 0; p < k; ++p) tuple[p] = values[idx[p]];
    assignment.clear();
    for (std::size_t p = 0; p < k; ++p) assignment[vars[p]] = tuple[p];
    if (Holds(f, db, assignment)) out.Add(tuple);
    std::size_t p = 0;
    while (p < k && ++idx[p] == values.size()) {
      idx[p] = 0;
      ++p;
    }
    if (p == k) break;
  }
  return out;
}

}  // namespace setalg::gf
