#include "gf/formula.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace setalg::gf {

class FormulaFactory {
 public:
  static FormulaPtr Make(FormulaKind kind) {
    auto* f = new Formula();
    f->kind_ = kind;
    return FormulaPtr(f);
  }
  static void SetVarCompare(const FormulaPtr& p, std::string x, ra::Cmp op,
                            std::string y) {
    Formula* f = Mutable(p);
    f->var1_ = std::move(x);
    f->cmp_ = op;
    f->var2_ = std::move(y);
  }
  static void SetConstCompare(const FormulaPtr& p, std::string x, ra::Cmp op,
                              core::Value c) {
    Formula* f = Mutable(p);
    f->var1_ = std::move(x);
    f->cmp_ = op;
    f->constant_ = c;
  }
  static void SetAtom(const FormulaPtr& p, std::string relation,
                      std::vector<std::string> vars) {
    Formula* f = Mutable(p);
    f->relation_name_ = std::move(relation);
    f->atom_vars_ = std::move(vars);
  }
  static void SetChildren(const FormulaPtr& p, std::vector<FormulaPtr> children) {
    Mutable(p)->children_ = std::move(children);
  }
  static void SetExists(const FormulaPtr& p, FormulaPtr guard,
                        std::vector<std::string> quantified, FormulaPtr body) {
    Formula* f = Mutable(p);
    f->guard_ = std::move(guard);
    f->quantified_ = std::move(quantified);
    f->children_ = {std::move(body)};
  }

 private:
  static Formula* Mutable(const FormulaPtr& p) { return const_cast<Formula*>(p.get()); }
};

FormulaPtr True() { return FormulaFactory::Make(FormulaKind::kTrue); }
FormulaPtr False() { return FormulaFactory::Make(FormulaKind::kFalse); }

FormulaPtr VarCmp(const std::string& x, ra::Cmp op, const std::string& y) {
  auto f = FormulaFactory::Make(FormulaKind::kVarCompare);
  FormulaFactory::SetVarCompare(f, x, op, y);
  return f;
}

FormulaPtr VarEq(const std::string& x, const std::string& y) {
  return VarCmp(x, ra::Cmp::kEq, y);
}

FormulaPtr VarLt(const std::string& x, const std::string& y) {
  return VarCmp(x, ra::Cmp::kLt, y);
}

FormulaPtr ConstCmp(const std::string& x, ra::Cmp op, core::Value c) {
  auto f = FormulaFactory::Make(FormulaKind::kConstCompare);
  FormulaFactory::SetConstCompare(f, x, op, c);
  return f;
}

FormulaPtr VarEqConst(const std::string& x, core::Value c) {
  return ConstCmp(x, ra::Cmp::kEq, c);
}

FormulaPtr Atom(const std::string& relation, std::vector<std::string> vars) {
  SETALG_CHECK(!relation.empty());
  auto f = FormulaFactory::Make(FormulaKind::kRelAtom);
  FormulaFactory::SetAtom(f, relation, std::move(vars));
  return f;
}

namespace {

FormulaPtr MakeConnective(FormulaKind kind, std::vector<FormulaPtr> children) {
  auto f = FormulaFactory::Make(kind);
  FormulaFactory::SetChildren(f, std::move(children));
  return f;
}

}  // namespace

FormulaPtr Not(FormulaPtr f) {
  if (f->kind() == FormulaKind::kTrue) return False();
  if (f->kind() == FormulaKind::kFalse) return True();
  return MakeConnective(FormulaKind::kNot, {std::move(f)});
}

FormulaPtr And(FormulaPtr a, FormulaPtr b) {
  if (a->kind() == FormulaKind::kFalse || b->kind() == FormulaKind::kFalse) {
    return False();
  }
  if (a->kind() == FormulaKind::kTrue) return b;
  if (b->kind() == FormulaKind::kTrue) return a;
  return MakeConnective(FormulaKind::kAnd, {std::move(a), std::move(b)});
}

FormulaPtr Or(FormulaPtr a, FormulaPtr b) {
  if (a->kind() == FormulaKind::kTrue || b->kind() == FormulaKind::kTrue) {
    return True();
  }
  if (a->kind() == FormulaKind::kFalse) return b;
  if (b->kind() == FormulaKind::kFalse) return a;
  return MakeConnective(FormulaKind::kOr, {std::move(a), std::move(b)});
}

FormulaPtr Implies(FormulaPtr a, FormulaPtr b) {
  return MakeConnective(FormulaKind::kImplies, {std::move(a), std::move(b)});
}

FormulaPtr Iff(FormulaPtr a, FormulaPtr b) {
  return MakeConnective(FormulaKind::kIff, {std::move(a), std::move(b)});
}

FormulaPtr AndAll(std::vector<FormulaPtr> fs) {
  FormulaPtr result = True();
  for (auto& f : fs) result = And(std::move(result), std::move(f));
  return result;
}

FormulaPtr OrAll(std::vector<FormulaPtr> fs) {
  FormulaPtr result = False();
  for (auto& f : fs) result = Or(std::move(result), std::move(f));
  return result;
}

FormulaPtr Exists(FormulaPtr guard, std::vector<std::string> quantified,
                  FormulaPtr body) {
  SETALG_CHECK_STREAM(guard->kind() == FormulaKind::kRelAtom)
      << "guard must be a relation atom";
  std::set<std::string> guard_vars(guard->atom_vars().begin(),
                                   guard->atom_vars().end());
  for (const auto& v : quantified) {
    SETALG_CHECK_STREAM(guard_vars.count(v) > 0)
        << "quantified variable " << v << " does not occur in the guard";
  }
  std::set<std::string> quantified_set(quantified.begin(), quantified.end());
  for (const auto& v : body->FreeVariables()) {
    SETALG_CHECK_STREAM(guard_vars.count(v) > 0)
        << "free variable " << v << " of the body does not occur in the guard";
  }
  auto f = FormulaFactory::Make(FormulaKind::kExists);
  FormulaFactory::SetExists(f, std::move(guard), std::move(quantified),
                            std::move(body));
  return f;
}

std::set<std::string> Formula::FreeVariables() const {
  switch (kind_) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
      return {};
    case FormulaKind::kVarCompare:
      return {var1_, var2_};
    case FormulaKind::kConstCompare:
      return {var1_};
    case FormulaKind::kRelAtom:
      return std::set<std::string>(atom_vars_.begin(), atom_vars_.end());
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff: {
      std::set<std::string> vars;
      for (const auto& child : children_) {
        auto sub = child->FreeVariables();
        vars.insert(sub.begin(), sub.end());
      }
      return vars;
    }
    case FormulaKind::kExists: {
      std::set<std::string> vars = guard_->FreeVariables();
      auto sub = body()->FreeVariables();
      vars.insert(sub.begin(), sub.end());
      for (const auto& v : quantified_) vars.erase(v);
      return vars;
    }
  }
  return {};
}

core::ConstantSet Formula::Constants() const {
  core::ConstantSet constants;
  switch (kind_) {
    case FormulaKind::kConstCompare:
      constants.push_back(constant_);
      break;
    case FormulaKind::kExists: {
      constants = guard_->Constants();
      auto sub = body()->Constants();
      constants.insert(constants.end(), sub.begin(), sub.end());
      break;
    }
    default:
      for (const auto& child : children_) {
        auto sub = child->Constants();
        constants.insert(constants.end(), sub.begin(), sub.end());
      }
      break;
  }
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()), constants.end());
  return constants;
}

std::string Formula::ToString() const {
  switch (kind_) {
    case FormulaKind::kTrue:
      return "true";
    case FormulaKind::kFalse:
      return "false";
    case FormulaKind::kVarCompare:
      return util::StrCat(var1_, " ", ra::CmpToString(cmp_), " ", var2_);
    case FormulaKind::kConstCompare:
      return util::StrCat(var1_, " ", ra::CmpToString(cmp_), " '", constant_, "'");
    case FormulaKind::kRelAtom: {
      std::vector<std::string> vars(atom_vars_.begin(), atom_vars_.end());
      return util::StrCat(relation_name_, "(", util::Join(vars, ", "), ")");
    }
    case FormulaKind::kNot:
      return util::StrCat("!(", children_[0]->ToString(), ")");
    case FormulaKind::kAnd:
      return util::StrCat("(", children_[0]->ToString(), " & ",
                          children_[1]->ToString(), ")");
    case FormulaKind::kOr:
      return util::StrCat("(", children_[0]->ToString(), " | ",
                          children_[1]->ToString(), ")");
    case FormulaKind::kImplies:
      return util::StrCat("(", children_[0]->ToString(), " -> ",
                          children_[1]->ToString(), ")");
    case FormulaKind::kIff:
      return util::StrCat("(", children_[0]->ToString(), " <-> ",
                          children_[1]->ToString(), ")");
    case FormulaKind::kExists: {
      std::vector<std::string> vars(quantified_.begin(), quantified_.end());
      return util::StrCat("exists ", util::Join(vars, ","), " (",
                          guard_->ToString(), " & ", body()->ToString(), ")");
    }
  }
  return "?";
}

std::string ValidateGf(const Formula& f, const core::Schema& schema) {
  switch (f.kind()) {
    case FormulaKind::kTrue:
    case FormulaKind::kFalse:
    case FormulaKind::kVarCompare:
    case FormulaKind::kConstCompare:
      return "";
    case FormulaKind::kRelAtom:
      if (!schema.HasRelation(f.relation_name())) {
        return util::StrCat("unknown relation: ", f.relation_name());
      }
      if (schema.Arity(f.relation_name()) != f.atom_vars().size()) {
        return util::StrCat("arity mismatch for atom ", f.relation_name(), ": expected ",
                            schema.Arity(f.relation_name()), ", got ",
                            f.atom_vars().size());
      }
      return "";
    case FormulaKind::kNot:
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
    case FormulaKind::kImplies:
    case FormulaKind::kIff:
      for (const auto& child : f.children()) {
        std::string error = ValidateGf(*child, schema);
        if (!error.empty()) return error;
      }
      return "";
    case FormulaKind::kExists: {
      std::string error = ValidateGf(*f.guard(), schema);
      if (!error.empty()) return error;
      // Guardedness is enforced structurally by Exists(); re-verify here
      // for formulas deserialized or constructed through other paths.
      std::set<std::string> guard_vars(f.guard()->atom_vars().begin(),
                                       f.guard()->atom_vars().end());
      for (const auto& v : f.quantified()) {
        if (guard_vars.count(v) == 0) {
          return util::StrCat("quantified variable ", v, " not in guard");
        }
      }
      for (const auto& v : f.body()->FreeVariables()) {
        if (guard_vars.count(v) == 0) {
          return util::StrCat("body variable ", v, " not covered by guard");
        }
      }
      return ValidateGf(*f.body(), schema);
    }
  }
  return "";
}

}  // namespace setalg::gf
