// The Theorem 8 translations between SA= and GF.
//
// Forward:  for every SA= expression E of arity k there is a GF formula
//           φ_E(x1..xk) with {d̄ | D ⊨ φ_E(d̄)} = E(D) for all D.
// Converse: for every GF formula φ(x1..xk) with constants in C there is an
//           SA= expression E_φ with E_φ(D) = {d̄ C-stored | D ⊨ φ(d̄)}.
//
// Both constructions hinge on C-storedness (Definition 4): every tuple an
// SA= expression can output has all its non-constant values inside a
// single stored tuple. The forward translation therefore enumerates
// "pieces" — a relation name plus a mapping from tuple positions to that
// relation's columns or constants — and guards each piece with the actual
// relation atom; the converse translation relativizes every connective to
// the SA= expression computing the C-stored universe.
#ifndef SETALG_GF_TRANSLATE_H_
#define SETALG_GF_TRANSLATE_H_

#include <string>
#include <vector>

#include "core/schema.h"
#include "gf/formula.h"
#include "ra/expr.h"

namespace setalg::gf {

/// SA= expression computing all C-stored k-tuples over the schema — the
/// finite union over relations T and position mappings {1..k} → columns(T)
/// ⊔ C of the corresponding project/tag expressions.
ra::ExprPtr CStoredUniverse(std::size_t k, const core::Schema& schema,
                            const core::ConstantSet& constants);

/// Theorem 8, forward direction. `expr` must be SA= (checked); `vars`
/// names its output columns (|vars| = arity, distinct). The result is a
/// valid GF formula over `schema` whose satisfying assignments are exactly
/// E(D) for every database D over the schema.
FormulaPtr SaEqToGf(const ra::ExprPtr& expr, const std::vector<std::string>& vars,
                    const core::Schema& schema);

/// Theorem 8, converse direction. `vars` must cover the free variables of
/// `f` (and fixes the output column order). `extra_constants` are added to
/// the constant set C derived from the formula (useful to align C across
/// experiments). The result is SA=.
ra::ExprPtr GfToSaEq(const Formula& f, const std::vector<std::string>& vars,
                     const core::Schema& schema,
                     const core::ConstantSet& extra_constants = {});

}  // namespace setalg::gf

#endif  // SETALG_GF_TRANSLATE_H_
