#include "bisim/bisimulation.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/check.h"
#include "util/str.h"

namespace setalg::bisim {
namespace {

std::vector<core::Value> Intersect(const std::vector<core::Value>& a,
                                   const std::vector<core::Value>& b) {
  std::vector<core::Value> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::back_inserter(out));
  return out;
}

}  // namespace

std::string VerifyBisimulation(const std::vector<PartialIso>& isos,
                               const core::Database& a, const core::Database& b,
                               const core::ConstantSet& constants) {
  if (isos.empty()) return "a bisimulation must be a nonempty set";
  for (const auto& f : isos) {
    std::string error = CheckCPartialIso(f, a, b, constants);
    if (!error.empty()) {
      return util::StrCat("member ", f.ToString(), " is not a C-partial iso: ", error);
    }
  }
  const auto guarded_a = a.GuardedSets();
  const auto guarded_b = b.GuardedSets();
  for (const auto& f : isos) {
    const auto domain = f.Domain();
    const auto range = f.Range();
    // Forth: every guarded set X' of A has a compatible g: X' → Y' in I.
    for (const auto& x_prime : guarded_a) {
      bool found = false;
      for (const auto& g : isos) {
        if (g.Domain() != x_prime) continue;
        if (g.AgreesOn(f, Intersect(domain, x_prime))) {
          found = true;
          break;
        }
      }
      if (!found) {
        return util::StrCat("forth fails for ", f.ToString(), " at guarded set of A");
      }
    }
    // Back: every guarded set Y' of B has a compatible g with range Y'.
    for (const auto& y_prime : guarded_b) {
      bool found = false;
      for (const auto& g : isos) {
        if (g.Range() != y_prime) continue;
        if (g.InverseAgreesOn(f, Intersect(range, y_prime))) {
          found = true;
          break;
        }
      }
      if (!found) {
        return util::StrCat("back fails for ", f.ToString(), " at guarded set of B");
      }
    }
  }
  return "";
}

BisimulationChecker::BisimulationChecker(const core::Database* a,
                                         const core::Database* b,
                                         core::ConstantSet constants)
    : a_(a), b_(b), constants_(std::move(constants)) {
  SETALG_DCHECK(std::is_sorted(constants_.begin(), constants_.end()));
  guarded_a_ = a_->GuardedSets();
  guarded_b_ = b_->GuardedSets();
  by_domain_.resize(guarded_a_.size());
  by_range_.resize(guarded_b_.size());

  std::map<std::vector<core::Value>, std::size_t> domain_index, range_index;
  for (std::size_t i = 0; i < guarded_a_.size(); ++i) domain_index[guarded_a_[i]] = i;
  for (std::size_t i = 0; i < guarded_b_.size(); ++i) range_index[guarded_b_[i]] = i;

  // Candidates: positional maps between same-arity stored tuples that are
  // C-partial isomorphisms.
  const auto tuples_a = a_->TupleSpace();
  const auto tuples_b = b_->TupleSpace();
  for (const auto& ta : tuples_a) {
    for (const auto& tb : tuples_b) {
      if (ta.size() != tb.size()) continue;
      auto iso = PartialIso::FromTuples(ta, tb);
      if (!iso.has_value()) continue;
      if (!CheckCPartialIso(*iso, *a_, *b_, constants_).empty()) continue;
      Candidate candidate;
      candidate.domain = iso->Domain();
      candidate.range = iso->Range();
      candidate.iso = std::move(*iso);
      const std::size_t index = candidates_.size();
      // Identical maps can arise from different tuple pairs; dedupe.
      bool duplicate = false;
      auto dom_it = domain_index.find(candidate.domain);
      SETALG_CHECK(dom_it != domain_index.end());
      for (std::size_t other : by_domain_[dom_it->second]) {
        if (candidates_[other].iso.pairs() == candidate.iso.pairs()) {
          duplicate = true;
          break;
        }
      }
      if (duplicate) continue;
      by_domain_[dom_it->second].push_back(index);
      auto range_it = range_index.find(candidate.range);
      SETALG_CHECK(range_it != range_index.end());
      by_range_[range_it->second].push_back(index);
      candidates_.push_back(std::move(candidate));
    }
  }
  initial_candidates_ = candidates_.size();

  // Greatest-fixpoint refinement: drop candidates violating back/forth.
  bool changed = true;
  while (changed) {
    changed = false;
    ++refinement_passes_;
    for (auto& candidate : candidates_) {
      if (!candidate.alive) continue;
      if (!Satisfied(candidate.iso, candidate.domain, candidate.range)) {
        candidate.alive = false;
        changed = true;
      }
    }
  }
}

bool BisimulationChecker::Satisfied(const PartialIso& iso,
                                    const std::vector<core::Value>& domain,
                                    const std::vector<core::Value>& range) const {
  // Forth.
  for (std::size_t gi = 0; gi < guarded_a_.size(); ++gi) {
    const auto overlap = Intersect(domain, guarded_a_[gi]);
    bool found = false;
    for (std::size_t ci : by_domain_[gi]) {
      const Candidate& g = candidates_[ci];
      if (!g.alive) continue;
      if (g.iso.AgreesOn(iso, overlap)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  // Back.
  for (std::size_t gi = 0; gi < guarded_b_.size(); ++gi) {
    const auto overlap = Intersect(range, guarded_b_[gi]);
    bool found = false;
    for (std::size_t ci : by_range_[gi]) {
      const Candidate& g = candidates_[ci];
      if (!g.alive) continue;
      if (g.iso.InverseAgreesOn(iso, overlap)) {
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  return true;
}

bool BisimulationChecker::AreBisimilar(core::TupleView a_tuple,
                                       core::TupleView b_tuple) const {
  SETALG_CHECK_STREAM(a_->IsCStored(a_tuple, constants_))
      << "left tuple is not C-stored in A";
  SETALG_CHECK_STREAM(b_->IsCStored(b_tuple, constants_))
      << "right tuple is not C-stored in B";
  auto iso = PartialIso::FromTuples(a_tuple, b_tuple);
  if (!iso.has_value()) return false;
  if (!CheckCPartialIso(*iso, *a_, *b_, constants_).empty()) return false;
  return Satisfied(*iso, iso->Domain(), iso->Range());
}

std::vector<PartialIso> BisimulationChecker::MaximalBisimulation() const {
  std::vector<PartialIso> result;
  for (const auto& candidate : candidates_) {
    if (candidate.alive) result.push_back(candidate.iso);
  }
  return result;
}

std::size_t BisimulationChecker::surviving_candidates() const {
  std::size_t count = 0;
  for (const auto& candidate : candidates_) {
    if (candidate.alive) ++count;
  }
  return count;
}

}  // namespace setalg::bisim
