#include "bisim/partial_iso.h"

#include <algorithm>

#include "util/check.h"
#include "util/str.h"

namespace setalg::bisim {

std::optional<PartialIso> PartialIso::FromTuples(core::TupleView a, core::TupleView b) {
  if (a.size() != b.size()) return std::nullopt;
  std::vector<std::pair<core::Value, core::Value>> pairs;
  pairs.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) pairs.emplace_back(a[i], b[i]);
  return FromPairs(std::move(pairs));
}

std::optional<PartialIso> PartialIso::FromPairs(
    std::vector<std::pair<core::Value, core::Value>> pairs) {
  std::sort(pairs.begin(), pairs.end());
  pairs.erase(std::unique(pairs.begin(), pairs.end()), pairs.end());
  PartialIso iso;
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    if (pairs[i].first == pairs[i + 1].first) return std::nullopt;  // Not a function.
  }
  iso.forward_ = pairs;
  for (auto& [x, y] : pairs) std::swap(x, y);
  std::sort(pairs.begin(), pairs.end());
  for (std::size_t i = 0; i + 1 < pairs.size(); ++i) {
    if (pairs[i].first == pairs[i + 1].first) return std::nullopt;  // Not injective.
  }
  iso.backward_ = std::move(pairs);
  return iso;
}

std::vector<core::Value> PartialIso::Domain() const {
  std::vector<core::Value> domain;
  domain.reserve(forward_.size());
  for (const auto& [x, y] : forward_) domain.push_back(x);
  return domain;
}

std::vector<core::Value> PartialIso::Range() const {
  std::vector<core::Value> range;
  range.reserve(backward_.size());
  for (const auto& [y, x] : backward_) range.push_back(y);
  return range;
}

bool PartialIso::MapsValue(core::Value x) const {
  return std::binary_search(
      forward_.begin(), forward_.end(), std::make_pair(x, core::Value{0}),
      [](const auto& p, const auto& q) { return p.first < q.first; });
}

bool PartialIso::MapsValueInverse(core::Value y) const {
  return std::binary_search(
      backward_.begin(), backward_.end(), std::make_pair(y, core::Value{0}),
      [](const auto& p, const auto& q) { return p.first < q.first; });
}

core::Value PartialIso::Map(core::Value x) const {
  auto it = std::lower_bound(
      forward_.begin(), forward_.end(), std::make_pair(x, core::Value{0}),
      [](const auto& p, const auto& q) { return p.first < q.first; });
  SETALG_CHECK(it != forward_.end() && it->first == x);
  return it->second;
}

core::Value PartialIso::MapInverse(core::Value y) const {
  auto it = std::lower_bound(
      backward_.begin(), backward_.end(), std::make_pair(y, core::Value{0}),
      [](const auto& p, const auto& q) { return p.first < q.first; });
  SETALG_CHECK(it != backward_.end() && it->first == y);
  return it->second;
}

bool PartialIso::AgreesOn(const PartialIso& other,
                          const std::vector<core::Value>& values) const {
  for (core::Value v : values) {
    if (MapsValue(v) && other.MapsValue(v) && Map(v) != other.Map(v)) return false;
  }
  return true;
}

bool PartialIso::InverseAgreesOn(const PartialIso& other,
                                 const std::vector<core::Value>& values) const {
  for (core::Value v : values) {
    if (MapsValueInverse(v) && other.MapsValueInverse(v) &&
        MapInverse(v) != other.MapInverse(v)) {
      return false;
    }
  }
  return true;
}

std::string PartialIso::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(forward_.size());
  for (const auto& [x, y] : forward_) {
    parts.push_back(util::StrCat(x, "->", y));
  }
  return util::StrCat("{", util::Join(parts, ", "), "}");
}

std::string CheckCPartialIso(const PartialIso& f, const core::Database& a,
                             const core::Database& b,
                             const core::ConstantSet& constants) {
  // Order preservation of f ∪ id_C. Collect the extended pair set; it must
  // remain a partial bijection and be monotone in both coordinates.
  std::vector<std::pair<core::Value, core::Value>> extended = f.pairs();
  for (core::Value c : constants) extended.emplace_back(c, c);
  std::sort(extended.begin(), extended.end());
  extended.erase(std::unique(extended.begin(), extended.end()), extended.end());
  for (std::size_t i = 0; i + 1 < extended.size(); ++i) {
    if (extended[i].first == extended[i + 1].first) {
      return util::StrCat("value ", extended[i].first,
                          " conflicts with a constant mapping");
    }
    if (extended[i].second >= extended[i + 1].second) {
      return util::StrCat("order not preserved (relative to constants) between ",
                          extended[i].first, " and ", extended[i + 1].first);
    }
  }

  // Relation preservation over all tuples with values in dom(f).
  const std::vector<core::Value> domain = f.Domain();
  for (const auto& name : a.schema().Names()) {
    const core::Relation& ra = a.relation(name);
    const core::Relation& rb = b.relation(name);
    const std::size_t r = ra.arity();
    if (r == 0) {
      if ((ra.size() > 0) != (rb.size() > 0)) {
        return util::StrCat("zero-ary relation ", name, " differs");
      }
      continue;
    }
    if (domain.empty()) continue;
    // Odometer over domain^r.
    std::vector<std::size_t> idx(r, 0);
    core::Tuple t(r), image(r);
    for (;;) {
      for (std::size_t p = 0; p < r; ++p) {
        t[p] = domain[idx[p]];
        image[p] = f.Map(t[p]);
      }
      if (ra.Contains(t) != rb.Contains(image)) {
        return util::StrCat("relation ", name, " not preserved on ",
                            core::TupleToString(t));
      }
      std::size_t p = 0;
      while (p < r && ++idx[p] == domain.size()) {
        idx[p] = 0;
        ++p;
      }
      if (p == r) break;
    }
  }
  return "";
}

}  // namespace setalg::bisim
