// C-guarded bisimulations (Definition 11) and the bisimilarity decision
// procedure used for the paper's inexpressibility arguments.
//
// Two tools:
//   - VerifyBisimulation: checks a user-supplied set I of partial
//     isomorphisms against the back-and-forth conditions verbatim — used to
//     validate the explicit bisimulations the paper exhibits (Example 12,
//     Proposition 26, Section 4.1).
//   - BisimulationChecker: computes the LARGEST C-guarded bisimulation
//     between two databases by greatest-fixpoint refinement over the
//     positional candidate maps (pairs of stored tuples), then answers
//     queries A,ā ∼ᶜg B,b̄. Candidates with guarded domains are exactly the
//     positional tuple-pair maps: a C-partial isomorphism defined on a
//     guarded set must send the guarding tuple to a stored tuple.
#ifndef SETALG_BISIM_BISIMULATION_H_
#define SETALG_BISIM_BISIMULATION_H_

#include <string>
#include <vector>

#include "bisim/partial_iso.h"
#include "core/database.h"

namespace setalg::bisim {

/// Verbatim check of Definition 11 for an explicit set I. Every member
/// must be a C-partial isomorphism and satisfy the back and forth
/// conditions within I. Returns an error description, or "" on success.
/// (I must be nonempty.)
std::string VerifyBisimulation(const std::vector<PartialIso>& isos,
                               const core::Database& a, const core::Database& b,
                               const core::ConstantSet& constants);

/// Greatest-fixpoint bisimilarity checker.
class BisimulationChecker {
 public:
  /// Precomputes the largest C-guarded bisimulation between a and b. The
  /// databases must outlive the checker.
  BisimulationChecker(const core::Database* a, const core::Database* b,
                      core::ConstantSet constants);

  /// Decides A,ā ∼ᶜg B,b̄ for C-stored tuples ā, b̄ (the positional map
  /// ā → b̄ must extend the fixpoint consistently).
  bool AreBisimilar(core::TupleView a_tuple, core::TupleView b_tuple) const;

  /// The surviving candidate maps (the largest bisimulation; empty when
  /// the databases have no bisimilar guarded tuples at all).
  std::vector<PartialIso> MaximalBisimulation() const;

  /// Number of candidate maps before/after refinement and passes taken
  /// (exposed for the bisimulation benchmarks).
  std::size_t initial_candidates() const { return initial_candidates_; }
  std::size_t surviving_candidates() const;
  std::size_t refinement_passes() const { return refinement_passes_; }

 private:
  struct Candidate {
    PartialIso iso;
    std::vector<core::Value> domain;  // sorted
    std::vector<core::Value> range;   // sorted
    bool alive = true;
  };

  // True iff the back-and-forth conditions hold for `iso` against the
  // currently alive candidates.
  bool Satisfied(const PartialIso& iso, const std::vector<core::Value>& domain,
                 const std::vector<core::Value>& range) const;

  const core::Database* a_;
  const core::Database* b_;
  core::ConstantSet constants_;
  std::vector<Candidate> candidates_;
  // Guarded sets of each database (sorted value sets).
  std::vector<std::vector<core::Value>> guarded_a_;
  std::vector<std::vector<core::Value>> guarded_b_;
  // candidate indices grouped by domain set / range set, aligned with
  // guarded_a_ / guarded_b_ respectively.
  std::vector<std::vector<std::size_t>> by_domain_;
  std::vector<std::vector<std::size_t>> by_range_;
  std::size_t initial_candidates_ = 0;
  std::size_t refinement_passes_ = 0;
};

}  // namespace setalg::bisim

#endif  // SETALG_BISIM_BISIMULATION_H_
