// C-partial isomorphisms between databases (Definition 10).
//
// A finite partial map f: X → Y between the domains of databases A and B
// is a C-partial isomorphism when it is bijective, preserves membership in
// every relation for all tuples over X, and preserves the order — where,
// following the intent of the paper's construction in Lemma 24, order is
// preserved *relative to the constants*: the extension f ∪ id_C must be
// order-preserving. (This subsumes the condition x=c ⇔ f(x)=c, and is what
// makes GF with order-against-constant atoms invariant under C-guarded
// bisimulation; see DESIGN.md.)
#ifndef SETALG_BISIM_PARTIAL_ISO_H_
#define SETALG_BISIM_PARTIAL_ISO_H_

#include <optional>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/tuple.h"
#include "core/value.h"

namespace setalg::bisim {

/// A finite partial bijection between value domains.
class PartialIso {
 public:
  PartialIso() = default;

  /// The positional map induced by a pair of equal-arity tuples: each a_i
  /// maps to b_i. Returns nullopt if that is not a well-defined bijection
  /// (one value to two images, or two values to one image).
  static std::optional<PartialIso> FromTuples(core::TupleView a, core::TupleView b);

  /// Builds from explicit pairs; nullopt under the same conditions.
  static std::optional<PartialIso> FromPairs(
      std::vector<std::pair<core::Value, core::Value>> pairs);

  std::size_t size() const { return forward_.size(); }
  bool empty() const { return forward_.empty(); }

  /// Domain X, sorted.
  std::vector<core::Value> Domain() const;
  /// Range Y, sorted.
  std::vector<core::Value> Range() const;

  bool MapsValue(core::Value x) const;
  bool MapsValueInverse(core::Value y) const;

  /// Forward image; x must be in the domain.
  core::Value Map(core::Value x) const;
  /// Inverse image; y must be in the range.
  core::Value MapInverse(core::Value y) const;

  /// True iff f and g agree on every value of `values` they both map
  /// (used for the back-and-forth overlap conditions).
  bool AgreesOn(const PartialIso& other, const std::vector<core::Value>& values) const;
  bool InverseAgreesOn(const PartialIso& other,
                       const std::vector<core::Value>& values) const;

  /// Mapping pairs sorted by source value.
  const std::vector<std::pair<core::Value, core::Value>>& pairs() const {
    return forward_;
  }

  std::string ToString() const;

 private:
  // Sorted by .first; backward_ sorted by .first = target value.
  std::vector<std::pair<core::Value, core::Value>> forward_;
  std::vector<std::pair<core::Value, core::Value>> backward_;
};

/// Full Definition 10 check of f as a C-partial isomorphism from A to B.
/// Verifies (a) the extension f ∪ id_C is a well-defined order-preserving
/// bijection and (b) for every relation R of arity r and every tuple over
/// dom(f)^r, membership in A(R) coincides with membership of the image in
/// B(R). Returns an explanatory message, or "" when f qualifies.
std::string CheckCPartialIso(const PartialIso& f, const core::Database& a,
                             const core::Database& b,
                             const core::ConstantSet& constants);

}  // namespace setalg::bisim

#endif  // SETALG_BISIM_PARTIAL_ISO_H_
