#include "workload/generators.h"

#include <algorithm>
#include <optional>

#include "util/check.h"

namespace setalg::workload {

using core::Relation;
using core::Value;

namespace {

// Draws one element in [1, domain] (uniform or Zipf-skewed).
Value DrawElement(util::Rng* rng, const util::ZipfDistribution* zipf,
                  std::size_t domain) {
  if (zipf != nullptr) return static_cast<Value>(zipf->Sample(rng));
  return static_cast<Value>(rng->NextBounded(domain) + 1);
}

}  // namespace

DivisionInstance MakeDivisionInstance(const DivisionConfig& config) {
  SETALG_CHECK(config.divisor_size <= config.domain_size);
  SETALG_CHECK(config.num_groups > 0 && config.group_size > 0);
  util::Rng rng(config.seed);
  std::optional<util::ZipfDistribution> zipf;
  if (config.zipf_skew > 0) zipf.emplace(config.domain_size, config.zipf_skew);

  DivisionInstance instance;
  // Divisor: a random sample of distinct elements.
  const auto divisor_indices = rng.SampleDistinct(config.divisor_size,
                                                  config.domain_size);
  std::vector<Value> divisor;
  divisor.reserve(divisor_indices.size());
  for (std::size_t i : divisor_indices) divisor.push_back(static_cast<Value>(i + 1));
  std::sort(divisor.begin(), divisor.end());
  for (Value b : divisor) instance.s.Add({b});

  instance.r.Reserve(config.num_groups * config.group_size);
  for (std::size_t g = 0; g < config.num_groups; ++g) {
    const Value a = static_cast<Value>(g + 1);
    const bool force_match = rng.NextDouble() < config.match_fraction;
    std::size_t drawn = 0;
    if (force_match) {
      for (Value b : divisor) instance.r.Add({a, b});
      drawn = divisor.size();
    }
    for (; drawn < config.group_size; ++drawn) {
      instance.r.Add({a, DrawElement(&rng, zipf ? &*zipf : nullptr,
                                     config.domain_size)});
    }
  }
  return instance;
}

SetJoinInstance MakeSetJoinInstance(const SetJoinConfig& config) {
  SETALG_CHECK(config.r_groups > 0 && config.s_groups > 0);
  util::Rng rng(config.seed);
  std::optional<util::ZipfDistribution> zipf;
  if (config.zipf_skew > 0) zipf.emplace(config.domain_size, config.zipf_skew);
  auto draw = [&]() {
    return DrawElement(&rng, zipf ? &*zipf : nullptr, config.domain_size);
  };

  SetJoinInstance instance;
  std::vector<std::vector<Value>> r_sets(config.r_groups);
  instance.r.Reserve(config.r_groups * config.r_group_size);
  for (std::size_t g = 0; g < config.r_groups; ++g) {
    const Value a = static_cast<Value>(g + 1);
    for (std::size_t k = 0; k < config.r_group_size; ++k) {
      const Value b = draw();
      r_sets[g].push_back(b);
      instance.r.Add({a, b});
    }
    std::sort(r_sets[g].begin(), r_sets[g].end());
    r_sets[g].erase(std::unique(r_sets[g].begin(), r_sets[g].end()), r_sets[g].end());
  }
  instance.s.Reserve(config.s_groups * config.s_group_size);
  for (std::size_t g = 0; g < config.s_groups; ++g) {
    const Value c = static_cast<Value>(g + 1);
    if (rng.NextDouble() < config.containment_fraction) {
      // Sample (with replacement) from a random R group so the set is
      // contained by construction.
      const auto& source = r_sets[rng.NextBounded(r_sets.size())];
      const std::size_t take = std::min(config.s_group_size, source.size());
      const auto picks = rng.SampleDistinct(take, source.size());
      for (std::size_t p : picks) instance.s.Add({c, source[p]});
    } else {
      for (std::size_t k = 0; k < config.s_group_size; ++k) {
        instance.s.Add({c, draw()});
      }
    }
  }
  return instance;
}

core::Database SetJoinDatabase(const SetJoinInstance& instance) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  core::Database db(schema);
  db.SetRelation("R", instance.r);
  db.SetRelation("S", instance.s);
  return db;
}

core::Relation UniformBinaryRelation(std::size_t rows, std::size_t domain,
                                     std::uint64_t seed) {
  SETALG_CHECK(domain > 0);
  util::Rng rng(seed);
  Relation r(2);
  r.Reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    r.Add({static_cast<Value>(rng.NextBounded(domain) + 1),
           static_cast<Value>(rng.NextBounded(domain) + 1)});
  }
  return r;
}

core::Relation PathRelation(std::size_t n) {
  Relation r(2);
  r.Reserve(n);
  for (std::size_t i = 1; i < n; ++i) {
    r.Add({static_cast<Value>(i), static_cast<Value>(i + 1)});
  }
  return r;
}

core::Database DivisionFamilyDatabase(std::size_t n, std::size_t divisor_size,
                                      std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  DivisionConfig config;
  config.num_groups = std::max<std::size_t>(1, n / 8);
  config.group_size = 8;
  config.domain_size = std::max<std::size_t>(divisor_size + 1, n / 4 + 2);
  config.divisor_size = divisor_size;
  config.match_fraction = 0.3;
  config.seed = seed;
  DivisionInstance instance = MakeDivisionInstance(config);
  db.SetRelation("R", std::move(instance.r));
  db.SetRelation("S", std::move(instance.s));
  return db;
}

core::Database SparseBinaryDatabase(std::size_t n, std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  core::Database db(schema);
  db.SetRelation("R", UniformBinaryRelation(n, std::max<std::size_t>(2, n), seed));
  return db;
}

core::Database TwoRelationDatabase(std::size_t n, std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  const std::size_t domain = std::max<std::size_t>(2, n);
  db.SetRelation("R", UniformBinaryRelation(n, domain, seed));
  db.SetRelation("T", UniformBinaryRelation(n, domain, seed ^ 0x9e3779b97f4a7c15ULL));
  return db;
}

}  // namespace setalg::workload
