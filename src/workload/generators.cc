#include "workload/generators.h"

#include <algorithm>
#include <optional>
#include <utility>

#include "gf/formula.h"
#include "gf/translate.h"
#include "util/check.h"
#include "util/str.h"

namespace setalg::workload {

using core::Relation;
using core::Value;

namespace {

// Draws one element in [1, domain] (uniform or Zipf-skewed).
Value DrawElement(util::Rng* rng, const util::ZipfDistribution* zipf,
                  std::size_t domain) {
  if (zipf != nullptr) return static_cast<Value>(zipf->Sample(rng));
  return static_cast<Value>(rng->NextBounded(domain) + 1);
}

}  // namespace

DivisionInstance MakeDivisionInstance(const DivisionConfig& config) {
  SETALG_CHECK(config.divisor_size <= config.domain_size);
  SETALG_CHECK(config.num_groups > 0 && config.group_size > 0);
  util::Rng rng(config.seed);
  std::optional<util::ZipfDistribution> zipf;
  if (config.zipf_skew > 0) zipf.emplace(config.domain_size, config.zipf_skew);

  DivisionInstance instance;
  // Divisor: a random sample of distinct elements.
  const auto divisor_indices = rng.SampleDistinct(config.divisor_size,
                                                  config.domain_size);
  std::vector<Value> divisor;
  divisor.reserve(divisor_indices.size());
  for (std::size_t i : divisor_indices) divisor.push_back(static_cast<Value>(i + 1));
  std::sort(divisor.begin(), divisor.end());
  for (Value b : divisor) instance.s.Add({b});

  instance.r.Reserve(config.num_groups * config.group_size);
  for (std::size_t g = 0; g < config.num_groups; ++g) {
    const Value a = static_cast<Value>(g + 1);
    const bool force_match = rng.NextDouble() < config.match_fraction;
    std::size_t drawn = 0;
    if (force_match) {
      for (Value b : divisor) instance.r.Add({a, b});
      drawn = divisor.size();
    }
    for (; drawn < config.group_size; ++drawn) {
      instance.r.Add({a, DrawElement(&rng, zipf ? &*zipf : nullptr,
                                     config.domain_size)});
    }
  }
  return instance;
}

SetJoinInstance MakeSetJoinInstance(const SetJoinConfig& config) {
  SETALG_CHECK(config.r_groups > 0 && config.s_groups > 0);
  util::Rng rng(config.seed);
  std::optional<util::ZipfDistribution> zipf;
  if (config.zipf_skew > 0) zipf.emplace(config.domain_size, config.zipf_skew);
  auto draw = [&]() {
    return DrawElement(&rng, zipf ? &*zipf : nullptr, config.domain_size);
  };

  SetJoinInstance instance;
  std::vector<std::vector<Value>> r_sets(config.r_groups);
  instance.r.Reserve(config.r_groups * config.r_group_size);
  for (std::size_t g = 0; g < config.r_groups; ++g) {
    const Value a = static_cast<Value>(g + 1);
    for (std::size_t k = 0; k < config.r_group_size; ++k) {
      const Value b = draw();
      r_sets[g].push_back(b);
      instance.r.Add({a, b});
    }
    std::sort(r_sets[g].begin(), r_sets[g].end());
    r_sets[g].erase(std::unique(r_sets[g].begin(), r_sets[g].end()), r_sets[g].end());
  }
  instance.s.Reserve(config.s_groups * config.s_group_size);
  for (std::size_t g = 0; g < config.s_groups; ++g) {
    const Value c = static_cast<Value>(g + 1);
    if (rng.NextDouble() < config.containment_fraction) {
      // Sample (with replacement) from a random R group so the set is
      // contained by construction.
      const auto& source = r_sets[rng.NextBounded(r_sets.size())];
      const std::size_t take = std::min(config.s_group_size, source.size());
      const auto picks = rng.SampleDistinct(take, source.size());
      for (std::size_t p : picks) instance.s.Add({c, source[p]});
    } else {
      for (std::size_t k = 0; k < config.s_group_size; ++k) {
        instance.s.Add({c, draw()});
      }
    }
  }
  return instance;
}

core::Database SetJoinDatabase(const SetJoinInstance& instance) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  core::Database db(schema);
  db.SetRelation("R", instance.r);
  db.SetRelation("S", instance.s);
  return db;
}

core::Relation UniformBinaryRelation(std::size_t rows, std::size_t domain,
                                     std::uint64_t seed) {
  SETALG_CHECK(domain > 0);
  util::Rng rng(seed);
  Relation r(2);
  r.Reserve(rows);
  for (std::size_t i = 0; i < rows; ++i) {
    r.Add({static_cast<Value>(rng.NextBounded(domain) + 1),
           static_cast<Value>(rng.NextBounded(domain) + 1)});
  }
  return r;
}

core::Relation PathRelation(std::size_t n) {
  Relation r(2);
  r.Reserve(n);
  for (std::size_t i = 1; i < n; ++i) {
    r.Add({static_cast<Value>(i), static_cast<Value>(i + 1)});
  }
  return r;
}

core::Database DivisionFamilyDatabase(std::size_t n, std::size_t divisor_size,
                                      std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  DivisionConfig config;
  config.num_groups = std::max<std::size_t>(1, n / 8);
  config.group_size = 8;
  config.domain_size = std::max<std::size_t>(divisor_size + 1, n / 4 + 2);
  config.divisor_size = divisor_size;
  config.match_fraction = 0.3;
  config.seed = seed;
  DivisionInstance instance = MakeDivisionInstance(config);
  db.SetRelation("R", std::move(instance.r));
  db.SetRelation("S", std::move(instance.s));
  return db;
}

core::Database SparseBinaryDatabase(std::size_t n, std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  core::Database db(schema);
  db.SetRelation("R", UniformBinaryRelation(n, std::max<std::size_t>(2, n), seed));
  return db;
}

core::Database TwoRelationDatabase(std::size_t n, std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  const std::size_t domain = std::max<std::size_t>(2, n);
  db.SetRelation("R", UniformBinaryRelation(n, domain, seed));
  db.SetRelation("T", UniformBinaryRelation(n, domain, seed ^ 0x9e3779b97f4a7c15ULL));
  return db;
}

// ---------------------------------------------------------------------------
// Paired SQL / algebra workloads.
//
// Every builder here mirrors the lowering rules documented in
// sql/analyzer.h *by hand* — the point of the differential harness is
// that two independent implementations of the same deterministic spec
// agree tree for tree, so nothing below calls into sql/.
// ---------------------------------------------------------------------------

namespace {

// The element domain shared by every relation of SqlWorkloadDatabase;
// generated constants are drawn from it so predicates stay selective but
// non-degenerate.
constexpr std::size_t kSqlDomain = 24;

const char* CmpSql(ra::Cmp op) {
  switch (op) {
    case ra::Cmp::kEq: return "=";
    case ra::Cmp::kNeq: return "<>";
    case ra::Cmp::kLt: return "<";
    case ra::Cmp::kGt: return ">";
  }
  return "=";
}

ra::Cmp DrawCmp(util::Rng* rng, bool eq_heavy) {
  if (eq_heavy && rng->NextBool(0.6)) return ra::Cmp::kEq;
  switch (rng->NextBounded(4)) {
    case 0: return ra::Cmp::kEq;
    case 1: return ra::Cmp::kNeq;
    case 2: return ra::Cmp::kLt;
    default: return ra::Cmp::kGt;
  }
}

// Rule-1 mirror: the single-table composites of sql/analyzer.h.
ra::ExprPtr MirrorColumnColumn(ra::ExprPtr e, std::size_t i, ra::Cmp op,
                               std::size_t j) {
  switch (op) {
    case ra::Cmp::kEq: return ra::SelectEq(e, i, j);
    case ra::Cmp::kLt: return ra::SelectLt(e, i, j);
    case ra::Cmp::kGt: return ra::SelectLt(e, j, i);
    case ra::Cmp::kNeq: return ra::Diff(e, ra::SelectEq(e, i, j));
  }
  return e;
}

ra::ExprPtr MirrorColumnConst(ra::ExprPtr e, std::size_t i, ra::Cmp op, Value k) {
  const std::size_t n = e->arity();
  std::vector<std::size_t> identity(n);
  for (std::size_t c = 0; c < n; ++c) identity[c] = c + 1;
  switch (op) {
    case ra::Cmp::kEq: return ra::SelectConst(e, i, k);
    case ra::Cmp::kNeq: return ra::Diff(e, ra::SelectConst(e, i, k));
    case ra::Cmp::kLt:
      return ra::Project(ra::SelectLt(ra::Tag(e, k), i, n + 1), identity);
    case ra::Cmp::kGt:
      return ra::Project(ra::SelectLt(ra::Tag(e, k), n + 1, i), identity);
  }
  return e;
}

// One table in a generated FROM list.
struct GenTable {
  std::string name;
  std::size_t arity = 2;
  std::string alias;
  std::size_t offset = 0;  // Of its first column in the accumulated tuple.
};

GenTable PickBinary(util::Rng* rng, const std::string& alias) {
  static const char* const kBinary[] = {"R", "T", "U"};
  return GenTable{kBinary[rng->NextBounded(3)], 2, alias, 0};
}

// A generated single-table predicate (SQL text + mirror application).
struct GenFilter {
  std::string sql;
  bool is_const = false;
  std::size_t i = 0;
  ra::Cmp op = ra::Cmp::kEq;
  std::size_t j = 0;
  Value k = 0;
};

GenFilter DrawFilter(util::Rng* rng, const GenTable& table, bool qualify) {
  GenFilter filter;
  const std::string prefix = qualify ? table.alias + "." : std::string();
  if (table.arity >= 2 && rng->NextBool(0.4)) {
    filter.i = 1 + rng->NextBounded(table.arity);
    do {
      filter.j = 1 + rng->NextBounded(table.arity);
    } while (filter.j == filter.i);
    filter.op = DrawCmp(rng, false);
    filter.sql = util::StrCat(prefix, "c", filter.i, " ", CmpSql(filter.op), " ",
                              prefix, "c", filter.j);
  } else {
    filter.is_const = true;
    filter.i = 1 + rng->NextBounded(table.arity);
    filter.op = DrawCmp(rng, false);
    filter.k = static_cast<Value>(rng->NextBounded(kSqlDomain) + 1);
    filter.sql = util::StrCat(prefix, "c", filter.i, " ", CmpSql(filter.op), " ",
                              filter.k);
  }
  return filter;
}

ra::ExprPtr ApplyFilter(ra::ExprPtr e, const GenFilter& filter) {
  return filter.is_const ? MirrorColumnConst(e, filter.i, filter.op, filter.k)
                         : MirrorColumnColumn(e, filter.i, filter.op, filter.j);
}

// Select list: either "*" (no projection) or explicit global columns.
struct GenSelectList {
  std::string sql = "*";
  bool star = true;
  std::vector<std::size_t> globals;
};

GenSelectList DrawSelectList(util::Rng* rng, const std::vector<GenTable>& tables,
                             bool qualify) {
  GenSelectList list;
  if (rng->NextBool(0.3)) return list;  // SELECT *.
  list.star = false;
  const std::size_t count = 1 + rng->NextBounded(2);
  std::string sql;
  for (std::size_t c = 0; c < count; ++c) {
    const GenTable& table = tables[rng->NextBounded(tables.size())];
    const std::size_t local = 1 + rng->NextBounded(table.arity);
    list.globals.push_back(table.offset + local);
    if (c > 0) sql += ", ";
    if (qualify) sql += table.alias + ".";
    sql += util::StrCat("c", local);
  }
  list.sql = sql;
  return list;
}

ra::ExprPtr ApplySelectList(ra::ExprPtr e, const GenSelectList& list) {
  return list.star ? e : ra::Project(e, list.globals);
}

// --- One generator per family -------------------------------------------

SqlRaPair GenFilterQuery(util::Rng* rng) {
  static const char* const kTables[] = {"R", "S", "T", "U"};
  const std::size_t pick = rng->NextBounded(4);
  GenTable table{kTables[pick], pick == 1 ? std::size_t{1} : std::size_t{2},
                 "", 0};
  const bool with_alias = rng->NextBool();
  table.alias = with_alias ? "a" : table.name;

  std::vector<GenFilter> filters;
  const std::size_t count = 1 + rng->NextBounded(2);
  for (std::size_t i = 0; i < count; ++i) {
    filters.push_back(DrawFilter(rng, table, /*qualify=*/false));
  }
  const GenSelectList list = DrawSelectList(rng, {table}, /*qualify=*/false);

  std::string sql = util::StrCat("SELECT ", list.sql, " FROM ", table.name);
  if (with_alias) sql += util::StrCat(" ", table.alias);
  sql += " WHERE ";
  for (std::size_t i = 0; i < filters.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += filters[i].sql;
  }

  ra::ExprPtr e = ra::Rel(table.name, table.arity);
  for (const GenFilter& filter : filters) e = ApplyFilter(e, filter);
  return SqlRaPair{sql, ApplySelectList(e, list), "filter", true};
}

SqlRaPair GenJoin2Query(util::Rng* rng) {
  GenTable a = PickBinary(rng, "a");
  GenTable b = PickBinary(rng, "b");
  b.offset = a.arity;

  // Join atoms in WHERE order, oriented earlier-table-left in the mirror
  // whichever way the SQL spells them (rule 2).
  std::vector<ra::JoinAtom> atoms;
  std::vector<std::string> conjuncts;
  const std::size_t num_atoms = 1 + (rng->NextBool(0.3) ? 1 : 0);
  for (std::size_t n = 0; n < num_atoms; ++n) {
    const std::size_t i = 1 + rng->NextBounded(a.arity);
    const std::size_t j = 1 + rng->NextBounded(b.arity);
    const ra::Cmp op = DrawCmp(rng, true);
    if (rng->NextBool()) {
      conjuncts.push_back(util::StrCat("a.c", i, " ", CmpSql(op), " b.c", j));
      atoms.push_back({a.offset + i, op, j});
    } else {
      conjuncts.push_back(util::StrCat("b.c", j, " ", CmpSql(op), " a.c", i));
      atoms.push_back({a.offset + i, ra::MirrorCmp(op), j});
    }
  }

  std::vector<GenFilter> a_filters, b_filters;
  if (rng->NextBool(0.5)) {
    GenTable& target = rng->NextBool() ? a : b;
    GenFilter filter = DrawFilter(rng, target, /*qualify=*/true);
    (&target == &a ? a_filters : b_filters).push_back(filter);
    // Random position in the WHERE order (position does not change the
    // tree: single-table steps and join atoms land in separate lists).
    if (rng->NextBool()) {
      conjuncts.insert(conjuncts.begin(), filter.sql);
    } else {
      conjuncts.push_back(filter.sql);
    }
  }

  const GenSelectList list = DrawSelectList(rng, {a, b}, /*qualify=*/true);
  std::string sql = util::StrCat("SELECT ", list.sql, " FROM ", a.name, " a, ",
                                 b.name, " b WHERE ");
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += conjuncts[i];
  }

  ra::ExprPtr ea = ra::Rel(a.name, a.arity);
  for (const GenFilter& filter : a_filters) ea = ApplyFilter(ea, filter);
  ra::ExprPtr eb = ra::Rel(b.name, b.arity);
  for (const GenFilter& filter : b_filters) eb = ApplyFilter(eb, filter);
  return SqlRaPair{sql, ApplySelectList(ra::Join(ea, eb, atoms), list), "join2",
                   true};
}

SqlRaPair GenChain3Query(util::Rng* rng) {
  GenTable a = PickBinary(rng, "a");
  GenTable b = PickBinary(rng, "b");
  GenTable c = PickBinary(rng, "c");
  b.offset = 2;
  c.offset = 4;

  std::vector<std::string> conjuncts = {"a.c2 = b.c1", "b.c2 = c.c1"};
  std::vector<ra::JoinAtom> b_atoms = {{2, ra::Cmp::kEq, 1}};
  std::vector<ra::JoinAtom> c_atoms = {{4, ra::Cmp::kEq, 1}};
  const bool close_triangle = rng->NextBool(0.4);
  if (close_triangle) {
    conjuncts.push_back("a.c1 = c.c2");
    c_atoms.push_back({1, ra::Cmp::kEq, 2});
  }

  const GenSelectList list = DrawSelectList(rng, {a, b, c}, /*qualify=*/true);
  std::string sql = util::StrCat("SELECT ", list.sql, " FROM ", a.name, " a, ",
                                 b.name, " b, ", c.name, " c WHERE ");
  for (std::size_t i = 0; i < conjuncts.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += conjuncts[i];
  }

  const ra::ExprPtr chain =
      ra::Join(ra::Join(ra::Rel(a.name, 2), ra::Rel(b.name, 2), b_atoms),
               ra::Rel(c.name, 2), c_atoms);
  return SqlRaPair{sql, ApplySelectList(chain, list), "chain3", true};
}

SqlRaPair GenDivisionQuery(util::Rng* rng) {
  // The FOR ALL idiom over the division instance {R/2, S/1}, varied in
  // alias spelling, conjunct order and equality direction — all of which
  // the frontend must normalize to the one textbook tree.
  static const char* const kOuter[] = {"r", "x", "grp"};
  static const char* const kMid[] = {"s", "d", "req"};
  static const char* const kInner[] = {"r2", "y", "row"};
  const std::string r = kOuter[rng->NextBounded(3)];
  const std::string s = kMid[rng->NextBounded(3)];
  const std::string r2 = kInner[rng->NextBounded(3)];

  std::string tie_outer = rng->NextBool()
                              ? util::StrCat(r2, ".c1 = ", r, ".c1")
                              : util::StrCat(r, ".c1 = ", r2, ".c1");
  std::string tie_mid = rng->NextBool()
                            ? util::StrCat(r2, ".c2 = ", s, ".c1")
                            : util::StrCat(s, ".c1 = ", r2, ".c2");
  if (rng->NextBool()) std::swap(tie_outer, tie_mid);

  const std::string sql = util::StrCat(
      "SELECT ", r, ".c1 FROM R ", r, " WHERE NOT EXISTS (SELECT * FROM S ", s,
      " WHERE NOT EXISTS (SELECT * FROM R ", r2, " WHERE ", tie_outer, " AND ",
      tie_mid, "))");

  const ra::ExprPtr rel_r = ra::Rel("R", 2);
  const ra::ExprPtr cand = ra::Project(rel_r, {1});
  const ra::ExprPtr expr = ra::Diff(
      cand,
      ra::Project(ra::Diff(ra::Product(cand, ra::Rel("S", 1)), rel_r), {1}));
  return SqlRaPair{sql, expr, "division", true};
}

SqlRaPair GenSemiJoinQuery(util::Rng* rng) {
  GenTable outer = PickBinary(rng, "a");
  static const char* const kSub[] = {"R", "S", "T", "U"};
  const std::size_t pick = rng->NextBounded(4);
  GenTable sub{kSub[pick], pick == 1 ? std::size_t{1} : std::size_t{2}, "b", 0};
  const bool negated = rng->NextBool();

  // Correlated conjuncts (rule 3): subquery WHERE order, outer-left.
  std::vector<ra::JoinAtom> atoms;
  std::vector<std::string> sub_conjuncts;
  const std::size_t num_corr =
      1 + ((sub.arity >= 2 && rng->NextBool(0.3)) ? 1 : 0);
  for (std::size_t n = 0; n < num_corr; ++n) {
    const std::size_t i = 1 + rng->NextBounded(outer.arity);
    const std::size_t j = 1 + rng->NextBounded(sub.arity);
    const ra::Cmp op = n == 0 ? DrawCmp(rng, true) : ra::Cmp::kEq;
    if (rng->NextBool()) {
      sub_conjuncts.push_back(util::StrCat("a.c", i, " ", CmpSql(op), " b.c", j));
      atoms.push_back({i, op, j});
    } else {
      sub_conjuncts.push_back(util::StrCat("b.c", j, " ", CmpSql(op), " a.c", i));
      atoms.push_back({i, ra::MirrorCmp(op), j});
    }
  }
  std::vector<GenFilter> sub_filters;
  if (rng->NextBool(0.4)) {
    GenFilter filter = DrawFilter(rng, sub, /*qualify=*/true);
    sub_filters.push_back(filter);
    if (rng->NextBool()) {
      sub_conjuncts.insert(sub_conjuncts.begin(), filter.sql);
    } else {
      sub_conjuncts.push_back(filter.sql);
    }
  }

  const GenSelectList list = DrawSelectList(rng, {outer}, /*qualify=*/true);
  std::string sql = util::StrCat("SELECT ", list.sql, " FROM ", outer.name,
                                 " a WHERE ", negated ? "NOT " : "",
                                 "EXISTS (SELECT * FROM ", sub.name, " b WHERE ");
  for (std::size_t i = 0; i < sub_conjuncts.size(); ++i) {
    if (i > 0) sql += " AND ";
    sql += sub_conjuncts[i];
  }
  sql += ")";

  const ra::ExprPtr e = ra::Rel(outer.name, outer.arity);
  ra::ExprPtr sub_expr = ra::Rel(sub.name, sub.arity);
  for (const GenFilter& filter : sub_filters) {
    sub_expr = ApplyFilter(sub_expr, filter);
  }
  const ra::ExprPtr applied = ra::SemiJoin(e, sub_expr, atoms);
  return SqlRaPair{sql,
                   ApplySelectList(negated ? ra::Diff(e, applied) : applied, list),
                   "semijoin", true};
}

SqlRaPair GenInQuery(util::Rng* rng) {
  GenTable outer = PickBinary(rng, "a");
  static const char* const kSub[] = {"R", "S", "T", "U"};
  const std::size_t pick = rng->NextBounded(4);
  GenTable sub{kSub[pick], pick == 1 ? std::size_t{1} : std::size_t{2}, "b", 0};
  const bool negated = rng->NextBool();
  const std::size_t outer_col = 1 + rng->NextBounded(outer.arity);
  const std::size_t sub_col = 1 + rng->NextBounded(sub.arity);

  std::vector<GenFilter> sub_filters;
  std::string sub_where;
  if (rng->NextBool(0.4)) {
    GenFilter filter = DrawFilter(rng, sub, /*qualify=*/false);
    sub_filters.push_back(filter);
    sub_where = util::StrCat(" WHERE ", filter.sql);
  }

  const GenSelectList list = DrawSelectList(rng, {outer}, /*qualify=*/true);
  const std::string sql = util::StrCat(
      "SELECT ", list.sql, " FROM ", outer.name, " a WHERE a.c", outer_col,
      negated ? " NOT IN" : " IN", " (SELECT c", sub_col, " FROM ", sub.name,
      " b", sub_where, ")");

  const ra::ExprPtr e = ra::Rel(outer.name, outer.arity);
  ra::ExprPtr sub_expr = ra::Rel(sub.name, sub.arity);
  for (const GenFilter& filter : sub_filters) {
    sub_expr = ApplyFilter(sub_expr, filter);
  }
  sub_expr = ra::Project(sub_expr, {sub_col});
  const ra::ExprPtr applied =
      ra::SemiJoin(e, sub_expr, {{outer_col, ra::Cmp::kEq, std::size_t{1}}});
  return SqlRaPair{sql,
                   ApplySelectList(negated ? ra::Diff(e, applied) : applied, list),
                   "in", true};
}

SqlRaPair GenSetOpQuery(util::Rng* rng) {
  // Two single-table selects projected to a shared arity, composed with a
  // random set operation (rule 5).
  const std::size_t arity = 1 + rng->NextBounded(2);
  const auto side = [&](const char* table) {
    GenTable t{table, 2, table, 0};
    GenFilter filter = DrawFilter(rng, t, /*qualify=*/false);
    std::string cols;
    std::vector<std::size_t> globals;
    for (std::size_t c = 0; c < arity; ++c) {
      const std::size_t local = 1 + rng->NextBounded(2);
      globals.push_back(local);
      if (c > 0) cols += ", ";
      cols += util::StrCat("c", local);
    }
    const std::string sql = util::StrCat("SELECT ", cols, " FROM ", table,
                                         " WHERE ", filter.sql);
    return std::make_pair(sql,
                          ra::Project(ApplyFilter(ra::Rel(table, 2), filter),
                                      globals));
  };
  const auto left = side("R");
  const auto right = side(rng->NextBool() ? "T" : "U");

  switch (rng->NextBounded(3)) {
    case 0:
      return SqlRaPair{util::StrCat(left.first, " UNION ", right.first),
                       ra::Union(left.second, right.second), "setop", true};
    case 1:
      return SqlRaPair{util::StrCat(left.first, " EXCEPT ", right.first),
                       ra::Diff(left.second, right.second), "setop", true};
    default:
      return SqlRaPair{
          util::StrCat(left.first, " INTERSECT ", right.first),
          ra::Diff(left.second, ra::Diff(left.second, right.second)), "setop",
          true};
  }
}

SqlRaPair GenGfQuery(std::size_t which, const core::Schema& schema) {
  // Set-containment / division shapes via the Theorem 8 converse
  // translation: the SA= tree is semantically equal to the SQL but
  // structurally unrelated, so these pairs compare results only.
  using gf::Atom;
  using gf::Exists;
  switch (which % 4) {
    case 0:
      // ∃y (R(x,y) ∧ S(y)) — x's with a required element.
      return SqlRaPair{
          "SELECT r.c1 FROM R r WHERE EXISTS (SELECT * FROM S s WHERE "
          "s.c1 = r.c2)",
          gf::GfToSaEq(*Exists(Atom("R", {"x", "y"}), {"y"}, Atom("S", {"y"})),
                       {"x"}, schema),
          "gfdiv", false};
    case 1:
      // ∃y (R(x,y) ∧ ¬S(y)) — x's with a non-required element.
      return SqlRaPair{
          "SELECT r.c1 FROM R r WHERE r.c2 NOT IN (SELECT c1 FROM S s)",
          gf::GfToSaEq(*Exists(Atom("R", {"x", "y"}), {"y"},
                               gf::Not(Atom("S", {"y"}))),
                       {"x"}, schema),
          "gfdiv", false};
    case 2:
      // ∃y R(x,y) ∧ ¬∃y (R(x,y) ∧ ¬S(y)) — division over nonempty groups.
      return SqlRaPair{
          "SELECT r.c1 FROM R r WHERE NOT EXISTS (SELECT * FROM R r2 WHERE "
          "r2.c1 = r.c1 AND r2.c2 NOT IN (SELECT c1 FROM S s))",
          gf::GfToSaEq(
              *gf::And(Exists(Atom("R", {"x", "y"}), {"y"}, gf::True()),
                       gf::Not(Exists(Atom("R", {"x", "y"}), {"y"},
                                      gf::Not(Atom("S", {"y"}))))),
              {"x"}, schema),
          "gfdiv", false};
    default:
      // ∃y (R(x,y) ∧ ∃z T(y,z)) — a guarded two-step reach.
      return SqlRaPair{
          "SELECT r.c1 FROM R r WHERE EXISTS (SELECT * FROM T t WHERE "
          "t.c1 = r.c2)",
          gf::GfToSaEq(*Exists(Atom("R", {"x", "y"}), {"y"},
                               Exists(Atom("T", {"y", "z"}), {"z"}, gf::True())),
                       {"x"}, schema),
          "gfdiv", false};
  }
}

}  // namespace

core::Database SqlWorkloadDatabase(std::uint64_t seed) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  schema.AddRelation("T", 2);
  schema.AddRelation("U", 2);

  DivisionConfig config;
  config.num_groups = 40;
  config.group_size = 6;
  config.domain_size = kSqlDomain;
  config.divisor_size = 3;
  config.match_fraction = 0.3;
  config.seed = seed;
  DivisionInstance instance = MakeDivisionInstance(config);

  core::Database db(schema);
  db.SetRelation("R", std::move(instance.r));
  db.SetRelation("S", std::move(instance.s));
  db.SetRelation("T", UniformBinaryRelation(120, kSqlDomain,
                                            seed ^ 0x9e3779b97f4a7c15ULL));
  db.SetRelation("U", UniformBinaryRelation(100, kSqlDomain,
                                            seed * 0x2545f4914f6cdd1dULL + 1));
  return db;
}

std::vector<SqlRaPair> MakeSqlWorkload(const SqlWorkloadConfig& config) {
  util::Rng rng(config.seed);
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  schema.AddRelation("T", 2);
  schema.AddRelation("U", 2);

  std::vector<SqlRaPair> pairs;
  pairs.reserve(config.count);
  std::size_t gf_counter = 0;
  for (std::size_t i = 0; i < config.count; ++i) {
    // Round-robin over the families so every one of them gets at least
    // count/8 pairs at every seed.
    switch (i % 8) {
      case 0: pairs.push_back(GenFilterQuery(&rng)); break;
      case 1: pairs.push_back(GenJoin2Query(&rng)); break;
      case 2: pairs.push_back(GenChain3Query(&rng)); break;
      case 3: pairs.push_back(GenDivisionQuery(&rng)); break;
      case 4: pairs.push_back(GenSemiJoinQuery(&rng)); break;
      case 5: pairs.push_back(GenInQuery(&rng)); break;
      case 6: pairs.push_back(GenSetOpQuery(&rng)); break;
      default: pairs.push_back(GenGfQuery(gf_counter++, schema)); break;
    }
  }
  return pairs;
}

SqlRaPair TriangleSqlPair() {
  return SqlRaPair{
      "SELECT * FROM R a, S b, T c WHERE a.c2 = b.c1 AND b.c2 = c.c1 AND "
      "a.c1 = c.c2",
      ra::Join(ra::Join(ra::Rel("R", 2), ra::Rel("S", 2), {{2, ra::Cmp::kEq, 1}}),
               ra::Rel("T", 2), {{4, ra::Cmp::kEq, 1}, {1, ra::Cmp::kEq, 2}}),
      "triangle", true};
}

core::Database SqlTriangleDatabase(std::size_t n, std::size_t d,
                                   std::uint64_t seed) {
  SETALG_CHECK(d > 0 && n >= d);
  const std::size_t side = n / d;
  Relation r(2), s(2), t(2);
  for (std::size_t x = 0; x < side; ++x) {
    for (std::size_t y = 0; y < d; ++y) {
      r.Add({static_cast<Value>(1 + x), static_cast<Value>(100001 + y)});
    }
  }
  for (std::size_t y = 0; y < d; ++y) {
    for (std::size_t z = 0; z < side; ++z) {
      s.Add({static_cast<Value>(100001 + y), static_cast<Value>(200001 + z)});
    }
  }
  util::Rng rng(seed);
  for (std::size_t i = 0; i < n; ++i) {
    t.Add({static_cast<Value>(200001 + rng.NextBounded(side)),
           static_cast<Value>(1 + rng.NextBounded(side))});
  }
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 2);
  schema.AddRelation("T", 2);
  core::Database db(schema);
  db.SetRelation("R", std::move(r));
  db.SetRelation("S", std::move(s));
  db.SetRelation("T", std::move(t));
  return db;
}

}  // namespace setalg::workload
