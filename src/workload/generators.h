// Reproducible synthetic workloads for the experiments: set-valued
// relations with controlled group counts / set sizes / skew, division
// instances with controlled selectivity, scalable database families
// for the growth (dichotomy) measurements, and paired SQL/algebra
// workloads for the differential SQL-frontend harness. Every generator
// is seeded.
#ifndef SETALG_WORKLOAD_GENERATORS_H_
#define SETALG_WORKLOAD_GENERATORS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "ra/expr.h"
#include "util/rng.h"

namespace setalg::workload {

/// A division instance: R(A,B) and divisor S(B).
struct DivisionInstance {
  core::Relation r{2};
  core::Relation s{1};
};

struct DivisionConfig {
  std::size_t num_groups = 100;      // Distinct A values.
  std::size_t group_size = 8;        // Elements per A (before dedup).
  std::size_t domain_size = 64;      // Element universe size.
  std::size_t divisor_size = 4;      // |S|.
  double match_fraction = 0.3;       // Fraction of groups forced ⊇ S.
  double zipf_skew = 0.0;            // Element skew (0 = uniform).
  std::uint64_t seed = 1;
};

/// Generates a division instance where ~match_fraction of the groups are
/// guaranteed to contain the divisor (so results are non-trivial at every
/// selectivity).
DivisionInstance MakeDivisionInstance(const DivisionConfig& config);

/// A set-join instance: two grouped binary relations R(A,B), S(C,D).
struct SetJoinInstance {
  core::Relation r{2};
  core::Relation s{2};
};

struct SetJoinConfig {
  std::size_t r_groups = 100;
  std::size_t s_groups = 100;
  std::size_t r_group_size = 10;
  std::size_t s_group_size = 4;      // Contained side: smaller sets.
  std::size_t domain_size = 64;
  double containment_fraction = 0.1;  // S groups sampled from an R group.
  double zipf_skew = 0.0;
  std::uint64_t seed = 1;
};

/// Generates a set-join instance; a containment_fraction of the S groups
/// are sampled as subsets of random R groups so the containment join has
/// matches; for set-equality experiments those subsets are full copies
/// when s_group_size >= r_group_size.
SetJoinInstance MakeSetJoinInstance(const SetJoinConfig& config);

/// A database over schema {R/2, S/2} holding a set-join instance (the
/// shape the engine's hand-built set-join plans scan).
core::Database SetJoinDatabase(const SetJoinInstance& instance);

/// Uniform random binary relation with `rows` tuples over a value domain
/// of the given size (values 1..domain).
core::Relation UniformBinaryRelation(std::size_t rows, std::size_t domain,
                                     std::uint64_t seed);

/// The path relation {(i, i+1) | 1 <= i < n} — a canonical sparse family.
core::Relation PathRelation(std::size_t n);

/// Database families for growth experiments over schema {R/2, S/1}:
/// R uniform with `rows` = n and domain √n·`density`, S a sample of
/// `divisor` values. |D| = Θ(n).
core::Database DivisionFamilyDatabase(std::size_t n, std::size_t divisor_size,
                                      std::uint64_t seed);

/// Family over schema {R/2}: R = uniform n tuples over domain ~ n.
core::Database SparseBinaryDatabase(std::size_t n, std::uint64_t seed);

/// Family over schema {R/2, T/2}: two uniform relations of n tuples each
/// over a shared domain (for multi-relation expressions).
core::Database TwoRelationDatabase(std::size_t n, std::uint64_t seed);

// ---------------------------------------------------------------------------
// Paired SQL / algebra workloads (the tests/sql_test.cc differential
// harness).
//
// Each pair carries one SQL statement and the ra::ExprPtr a correct
// frontend must lower it to, built here by *independently* mirroring the
// deterministic lowering rules documented in sql/analyzer.h. The harness
// asserts sql::Compile produces a structurally equal tree, then runs both
// sides through the engine and compares results and plan statistics.
// ---------------------------------------------------------------------------

/// One differential pair.
struct SqlRaPair {
  std::string sql;
  ra::ExprPtr expr;     // The hand-built lowering mirror.
  std::string family;   // "filter", "join2", "chain3", "division",
                        // "semijoin", "in", "setop" or "gfdiv".
  /// True for the mirrored families (the tree must match structurally and
  /// plan statistics must agree). False for the gfdiv family, whose
  /// expression comes from gf::GfToSaEq — semantically equal to the SQL
  /// but a structurally different SA= tree, so only results compare.
  bool compare_stats = true;
};

struct SqlWorkloadConfig {
  std::size_t count = 500;
  std::uint64_t seed = 1;
};

/// The database the SQL workload runs on, over schema {R/2, S/1, T/2,
/// U/2}: R and S form a division instance (so the division family is
/// non-trivial at every seed), T and U are uniform binary relations over
/// the same element domain (so joins, IN and EXISTS have matches).
core::Database SqlWorkloadDatabase(std::uint64_t seed);

/// Generates config.count pairs over SqlWorkloadDatabase's schema. Every
/// family occurs; the division family lowers to the exact textbook
/// pattern the planner's division rewrite matches.
std::vector<SqlRaPair> MakeSqlWorkload(const SqlWorkloadConfig& config);

/// The fixed triangle pair: the SQL three-way chain that lowers to the
/// binary join chain the planner collects into a multiway join, and that
/// chain hand-built. Run it on SqlTriangleDatabase with multiway-enabled
/// cost-based options and the planner routes it to the worst-case-optimal
/// operator.
SqlRaPair TriangleSqlPair();

/// Skewed triangle database over schema {R/2, S/2, T/2} (n edges per
/// relation, d distinct middle values) — the shape where the AGM bound
/// beats every binary plan, mirroring the multiway test family.
core::Database SqlTriangleDatabase(std::size_t n, std::size_t d,
                                   std::uint64_t seed);

}  // namespace setalg::workload

#endif  // SETALG_WORKLOAD_GENERATORS_H_
