// Minimal Result<T> for fallible operations (parsing, file I/O).
//
// The library proper never throws; operations that can fail on user input
// return Result<T> carrying either a value or an error message.
#ifndef SETALG_UTIL_RESULT_H_
#define SETALG_UTIL_RESULT_H_

#include <optional>
#include <string>
#include <utility>

#include "util/check.h"

namespace setalg::util {

/// A value-or-error-message holder, in the spirit of arrow::Result / StatusOr.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Named constructor for the error case.
  static Result<T> Error(std::string message) {
    Result<T> r;
    r.error_ = std::move(message);
    return r;
  }

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  /// The error message; only valid when !ok().
  const std::string& error() const {
    SETALG_CHECK_STREAM(!ok()) << "error() called on ok Result";
    return error_;
  }

  /// The value; only valid when ok().
  const T& value() const& {
    SETALG_CHECK_STREAM(ok()) << "value() called on error Result: " << error_;
    return *value_;
  }
  T& value() & {
    SETALG_CHECK_STREAM(ok()) << "value() called on error Result: " << error_;
    return *value_;
  }
  T&& value() && {
    SETALG_CHECK_STREAM(ok()) << "value() called on error Result: " << error_;
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Result() = default;
  std::optional<T> value_;
  std::string error_;
};

}  // namespace setalg::util

#endif  // SETALG_UTIL_RESULT_H_
