#include "util/str.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace setalg::util {

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      parts.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return parts;
}

std::string_view StripWhitespace(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

bool ParseInt64(std::string_view text, long long* out) {
  text = StripWhitespace(text);
  if (text.empty()) return false;
  std::string buffer(text);
  char* end = nullptr;
  errno = 0;
  const long long value = std::strtoll(buffer.c_str(), &end, 10);
  if (errno != 0 || end != buffer.c_str() + buffer.size()) return false;
  *out = value;
  return true;
}

}  // namespace setalg::util
