#include "util/bitset.h"

#include <bit>

namespace setalg::util {

Bitset::Bitset(std::size_t size, bool value)
    : size_(size), words_((size + 63) / 64, value ? ~0ULL : 0ULL) {
  if (value) ClearTrailingBits();
}

void Bitset::Set(std::size_t i) {
  SETALG_DCHECK(i < size_);
  words_[i >> 6] |= 1ULL << (i & 63);
}

void Bitset::Reset(std::size_t i) {
  SETALG_DCHECK(i < size_);
  words_[i >> 6] &= ~(1ULL << (i & 63));
}

bool Bitset::Test(std::size_t i) const {
  SETALG_DCHECK(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1ULL;
}

void Bitset::Fill(bool value) {
  for (auto& w : words_) w = value ? ~0ULL : 0ULL;
  if (value) ClearTrailingBits();
}

std::size_t Bitset::Count() const {
  std::size_t count = 0;
  for (std::uint64_t w : words_) count += static_cast<std::size_t>(std::popcount(w));
  return count;
}

bool Bitset::IsSubsetOf(const Bitset& other) const {
  SETALG_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & ~other.words_[i]) return false;
  }
  return true;
}

bool Bitset::Intersects(const Bitset& other) const {
  SETALG_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) {
    if (words_[i] & other.words_[i]) return true;
  }
  return false;
}

Bitset& Bitset::operator&=(const Bitset& other) {
  SETALG_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
  return *this;
}

Bitset& Bitset::operator|=(const Bitset& other) {
  SETALG_CHECK_EQ(size_, other.size_);
  for (std::size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
  return *this;
}

bool Bitset::operator==(const Bitset& other) const {
  return size_ == other.size_ && words_ == other.words_;
}

void Bitset::ClearTrailingBits() {
  const std::size_t tail = size_ & 63;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= (1ULL << tail) - 1;
  }
}

}  // namespace setalg::util
