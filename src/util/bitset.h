// Dynamic bitset used by hash-division bitmaps and set-join signatures.
#ifndef SETALG_UTIL_BITSET_H_
#define SETALG_UTIL_BITSET_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "util/check.h"

namespace setalg::util {

/// A fixed-size-after-construction bitset with the operations the set-join
/// algorithms need: set/test, popcount, all-set test, subset test, and
/// word-level AND/OR.
class Bitset {
 public:
  Bitset() = default;
  explicit Bitset(std::size_t size, bool value = false);

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void Set(std::size_t i);
  void Reset(std::size_t i);
  bool Test(std::size_t i) const;

  /// Sets every bit to `value`.
  void Fill(bool value);

  /// Number of set bits.
  std::size_t Count() const;

  bool AllSet() const { return Count() == size_; }
  bool NoneSet() const { return Count() == 0; }

  /// True iff every set bit of *this is also set in other. Sizes must match.
  bool IsSubsetOf(const Bitset& other) const;

  /// True iff the intersection is nonempty. Sizes must match.
  bool Intersects(const Bitset& other) const;

  Bitset& operator&=(const Bitset& other);
  Bitset& operator|=(const Bitset& other);
  bool operator==(const Bitset& other) const;

  /// 64-bit words backing the set (trailing bits of the last word are zero).
  const std::vector<std::uint64_t>& words() const { return words_; }

 private:
  void ClearTrailingBits();

  std::size_t size_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace setalg::util

#endif  // SETALG_UTIL_BITSET_H_
