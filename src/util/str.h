// Small string helpers (the toolchain's libstdc++ predates std::format).
#ifndef SETALG_UTIL_STR_H_
#define SETALG_UTIL_STR_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace setalg::util {

/// Concatenates the streamable arguments into one string.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  (out << ... << args);
  return out.str();
}

/// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Splits `text` on `sep` (keeping empty fields).
std::vector<std::string> Split(std::string_view text, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// Parses a signed 64-bit integer; returns false on any malformed input.
bool ParseInt64(std::string_view text, long long* out);

}  // namespace setalg::util

#endif  // SETALG_UTIL_STR_H_
