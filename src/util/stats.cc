#include "util/stats.h"

#include <cmath>

#include "util/check.h"

namespace setalg::util {

LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys) {
  SETALG_CHECK_EQ(xs.size(), ys.size());
  SETALG_CHECK_GE(xs.size(), 2u);
  const double n = static_cast<double>(xs.size());
  double sum_x = 0, sum_y = 0, sum_xx = 0, sum_xy = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sum_x += xs[i];
    sum_y += ys[i];
    sum_xx += xs[i] * xs[i];
    sum_xy += xs[i] * ys[i];
  }
  const double denom = n * sum_xx - sum_x * sum_x;
  LineFit fit;
  if (denom == 0.0) {
    // All x equal: degenerate; report a flat line through the mean.
    fit.slope = 0.0;
    fit.intercept = sum_y / n;
    fit.r_squared = 0.0;
    return fit;
  }
  fit.slope = (n * sum_xy - sum_x * sum_y) / denom;
  fit.intercept = (sum_y - fit.slope * sum_x) / n;

  const double mean_y = sum_y / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double pred = fit.slope * xs[i] + fit.intercept;
    ss_res += (ys[i] - pred) * (ys[i] - pred);
    ss_tot += (ys[i] - mean_y) * (ys[i] - mean_y);
  }
  fit.r_squared = ss_tot == 0.0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

LineFit FitGrowthExponent(const std::vector<std::size_t>& ns,
                          const std::vector<std::size_t>& sizes) {
  SETALG_CHECK_EQ(ns.size(), sizes.size());
  std::vector<double> xs, ys;
  xs.reserve(ns.size());
  ys.reserve(ns.size());
  for (std::size_t i = 0; i < ns.size(); ++i) {
    xs.push_back(std::log(static_cast<double>(ns[i])));
    ys.push_back(std::log(static_cast<double>(sizes[i] == 0 ? 1 : sizes[i])));
  }
  return FitLine(xs, ys);
}

Summary Summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  s.min = values[0];
  s.max = values[0];
  double sum = 0;
  for (double v : values) {
    if (v < s.min) s.min = v;
    if (v > s.max) s.max = v;
    sum += v;
  }
  s.mean = sum / static_cast<double>(values.size());
  double ss = 0;
  for (double v : values) ss += (v - s.mean) * (v - s.mean);
  s.stddev = std::sqrt(ss / static_cast<double>(values.size()));
  return s;
}

}  // namespace setalg::util
