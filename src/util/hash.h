// Hashing primitives used across the library: FNV-1a over byte ranges,
// SplitMix-style integer finalization, and order-dependent combining.
#ifndef SETALG_UTIL_HASH_H_
#define SETALG_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace setalg::util {

inline constexpr std::uint64_t kFnvOffsetBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

/// FNV-1a over an arbitrary byte range.
inline std::uint64_t FnvHashBytes(const void* data, std::size_t size,
                                  std::uint64_t seed = kFnvOffsetBasis) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < size; ++i) {
    h ^= bytes[i];
    h *= kFnvPrime;
  }
  return h;
}

inline std::uint64_t FnvHashString(std::string_view s) {
  return FnvHashBytes(s.data(), s.size());
}

/// SplitMix64 finalizer: a fast, well-mixing bijection on 64-bit integers.
inline constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// Order-dependent hash combining (boost-style with 64-bit constants).
inline constexpr std::uint64_t HashCombine(std::uint64_t seed, std::uint64_t value) {
  return seed ^ (Mix64(value) + 0x9e3779b97f4a7c15ULL + (seed << 12) + (seed >> 4));
}

/// Order-independent (commutative) combining, for hashing sets.
inline constexpr std::uint64_t HashCombineUnordered(std::uint64_t seed,
                                                    std::uint64_t value) {
  return seed + Mix64(value);
}

}  // namespace setalg::util

#endif  // SETALG_UTIL_HASH_H_
