// Growth fitting and summary statistics for the empirical dichotomy
// experiments (Theorem 17): given (n, size) samples we fit the slope of
// log(size) against log(n), i.e. the polynomial growth exponent.
#ifndef SETALG_UTIL_STATS_H_
#define SETALG_UTIL_STATS_H_

#include <cstddef>
#include <vector>

namespace setalg::util {

/// Least-squares line fit y = slope * x + intercept.
struct LineFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination in [0, 1]; 1 means a perfect fit.
  double r_squared = 0.0;
};

/// Ordinary least squares over the given points. Requires >= 2 points.
LineFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

/// Fits the exponent e of size ~ n^e from (n, size) samples via a log-log
/// line fit. Zero sizes are clamped to 1 so empty intermediates do not
/// produce -inf. Requires >= 2 samples with distinct n.
LineFit FitGrowthExponent(const std::vector<std::size_t>& ns,
                          const std::vector<std::size_t>& sizes);

/// Summary statistics of a sample.
struct Summary {
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
};

Summary Summarize(const std::vector<double>& values);

}  // namespace setalg::util

#endif  // SETALG_UTIL_STATS_H_
