#include "util/json.h"

#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstring>

#include "util/check.h"

namespace setalg::util {
namespace {

void AppendEscaped(std::string_view text, std::string* out) {
  out->push_back('"');
  for (char c : text) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x", c);
          out->append(buffer);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

}  // namespace

void JsonWriter::BeforeValue() {
  if (first_in_container_.empty()) {
    SETALG_CHECK_STREAM(out_.empty()) << "JSON document already has a root value";
    return;
  }
  if (key_pending_) {
    key_pending_ = false;
    return;
  }
  if (!first_in_container_.back()) out_.push_back(',');
  first_in_container_.back() = false;
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_.push_back('{');
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  SETALG_CHECK(!first_in_container_.empty() && !key_pending_);
  first_in_container_.pop_back();
  out_.push_back('}');
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_.push_back('[');
  first_in_container_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  SETALG_CHECK(!first_in_container_.empty() && !key_pending_);
  first_in_container_.pop_back();
  out_.push_back(']');
  return *this;
}

JsonWriter& JsonWriter::Key(std::string_view key) {
  SETALG_CHECK(!first_in_container_.empty() && !key_pending_);
  if (!first_in_container_.back()) out_.push_back(',');
  first_in_container_.back() = false;
  AppendEscaped(key, &out_);
  out_.push_back(':');
  key_pending_ = true;
  return *this;
}

JsonWriter& JsonWriter::Value(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_.append("null");
    return *this;
  }
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.6g", value);
  out_.append(buffer);
  return *this;
}

JsonWriter& JsonWriter::Value(bool value) {
  BeforeValue();
  out_.append(value ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::Value(std::string_view value) {
  BeforeValue();
  AppendEscaped(value, &out_);
  return *this;
}

std::string JsonWriter::TakeString() {
  SETALG_CHECK_STREAM(first_in_container_.empty() && !key_pending_)
      << "unclosed JSON container";
  std::string result = std::move(out_);
  out_.clear();
  return result;
}

bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    if (error != nullptr) *error = "cannot open " + path + ": " + std::strerror(errno);
    return false;
  }
  const std::size_t written = std::fwrite(content.data(), 1, content.size(), file);
  const bool closed = std::fclose(file) == 0;
  if (written != content.size() || !closed) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace setalg::util
