// Minimal streaming JSON writer — just enough for the machine-readable
// bench artifacts (BENCH_*.json) tracked across PRs. No dependencies, no
// parsing; commas and nesting are handled so call sites stay linear.
#ifndef SETALG_UTIL_JSON_H_
#define SETALG_UTIL_JSON_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

namespace setalg::util {

/// Builds one JSON document via Begin/End pairs, Key() and Value() calls.
/// Misuse (e.g. a bare Value inside an object without a Key) is a
/// programming error and aborts via CHECK.
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  /// Key of the next member; only valid directly inside an object.
  JsonWriter& Key(std::string_view key);

  JsonWriter& Value(double value);
  /// One template for all integer types: int, std::size_t, int64_t, ...
  /// (a fixed overload set is ambiguous on platforms where size_t matches
  /// neither int64_t nor uint64_t exactly).
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& Value(T value) {
    BeforeValue();
    out_.append(std::to_string(value));
    return *this;
  }
  JsonWriter& Value(bool value);
  JsonWriter& Value(std::string_view value);
  JsonWriter& Value(const char* value) { return Value(std::string_view(value)); }

  /// The finished document; all containers must be closed.
  std::string TakeString();

 private:
  void BeforeValue();

  std::string out_;
  // One frame per open container: true while no element written yet.
  std::vector<bool> first_in_container_;
  bool key_pending_ = false;
};

/// Writes `content` to `path`, replacing any existing file. Returns false
/// (and leaves a message in `*error` if non-null) on I/O failure.
bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error = nullptr);

}  // namespace setalg::util

#endif  // SETALG_UTIL_JSON_H_
