// Lightweight CHECK macros for internal invariants.
//
// Library code validates programmer-supplied structures (expression trees,
// schemas) eagerly at construction time. Violations are programming errors,
// so per the project style (no exceptions) we abort with a readable message.
#ifndef SETALG_UTIL_CHECK_H_
#define SETALG_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace setalg::util {

[[noreturn]] inline void CheckFailed(const char* file, int line, const char* expr,
                                     const std::string& message) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::abort();
}

namespace internal {

// Stream sink so `SETALG_CHECK(x) << "context " << y;` works.
class CheckMessageBuilder {
 public:
  CheckMessageBuilder(const char* file, int line, const char* expr)
      : file_(file), line_(line), expr_(expr) {}

  [[noreturn]] ~CheckMessageBuilder() { CheckFailed(file_, line_, expr_, stream_.str()); }

  template <typename T>
  CheckMessageBuilder& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  const char* file_;
  int line_;
  const char* expr_;
  std::ostringstream stream_;
};

// Used on the success path; swallows the streamed operands.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace setalg::util

#define SETALG_CHECK(condition)                                                    \
  ((condition)) ? (void)0                                                         \
                : (void)::setalg::util::internal::CheckMessageBuilder(__FILE__,    \
                                                                      __LINE__,    \
                                                                      #condition)

#define SETALG_CHECK_STREAM(condition)                                             \
  if (condition)                                                                   \
    ;                                                                              \
  else                                                                             \
    ::setalg::util::internal::CheckMessageBuilder(__FILE__, __LINE__, #condition)

#define SETALG_CHECK_EQ(a, b) SETALG_CHECK_STREAM((a) == (b)) << (a) << " vs " << (b)
#define SETALG_CHECK_NE(a, b) SETALG_CHECK_STREAM((a) != (b)) << (a) << " vs " << (b)
#define SETALG_CHECK_LT(a, b) SETALG_CHECK_STREAM((a) < (b)) << (a) << " vs " << (b)
#define SETALG_CHECK_LE(a, b) SETALG_CHECK_STREAM((a) <= (b)) << (a) << " vs " << (b)
#define SETALG_CHECK_GT(a, b) SETALG_CHECK_STREAM((a) > (b)) << (a) << " vs " << (b)
#define SETALG_CHECK_GE(a, b) SETALG_CHECK_STREAM((a) >= (b)) << (a) << " vs " << (b)

#ifdef NDEBUG
#define SETALG_DCHECK(condition) ((void)0)
#else
#define SETALG_DCHECK(condition) SETALG_CHECK(condition)
#endif

#endif  // SETALG_UTIL_CHECK_H_
