#include "util/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace setalg::util {

std::vector<std::size_t> Rng::SampleDistinct(std::size_t k, std::size_t n) {
  SETALG_CHECK_LE(k, n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k == 0) return out;
  if (k * 3 >= n) {
    // Dense case: shuffle a full index vector and take a prefix.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    out.assign(all.begin(), all.begin() + static_cast<std::ptrdiff_t>(k));
    return out;
  }
  // Sparse case: rejection sampling.
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    std::size_t candidate = NextBounded(n);
    if (seen.insert(candidate).second) out.push_back(candidate);
  }
  return out;
}

ZipfDistribution::ZipfDistribution(std::size_t n, double s) {
  SETALG_CHECK(n > 0);
  cumulative_.resize(n);
  double total = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cumulative_[i] = total;
  }
  for (auto& c : cumulative_) c /= total;
  cumulative_.back() = 1.0;  // Guard against floating-point shortfall.
}

std::size_t ZipfDistribution::Sample(Rng* rng) const {
  const double u = rng->NextDouble();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  return static_cast<std::size_t>(it - cumulative_.begin()) + 1;
}

}  // namespace setalg::util
