// Deterministic pseudo-random generation for workloads and property tests.
//
// A small xoshiro256** generator plus the distributions the workload module
// needs (uniform ints/doubles, Bernoulli, Zipf, shuffles, subset sampling).
// Everything is seeded explicitly so every experiment is reproducible.
#ifndef SETALG_UTIL_RNG_H_
#define SETALG_UTIL_RNG_H_

#include <cstdint>
#include <vector>

#include "util/check.h"
#include "util/hash.h"

namespace setalg::util {

/// xoshiro256** PRNG. Deterministic, fast, and good enough for synthetic data.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eedULL) { Seed(seed); }

  /// Re-seeds the generator; distinct seeds give independent-looking streams.
  void Seed(std::uint64_t seed) {
    // SplitMix64 expansion of the seed into the four lanes, per the
    // xoshiro authors' recommendation.
    std::uint64_t x = seed;
    for (auto& lane : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      lane = Mix64(x);
    }
    if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
      state_[0] = 1;
    }
  }

  /// Next raw 64-bit value.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be positive.
  std::uint64_t NextBounded(std::uint64_t bound) {
    SETALG_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = -bound % bound;
    for (;;) {
      const std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t NextInt(std::int64_t lo, std::int64_t hi) {
    SETALG_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    NextBounded(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return static_cast<double>(Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli draw.
  bool NextBool(double p = 0.5) { return NextDouble() < p; }

  /// Fisher–Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = NextBounded(i);
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<std::size_t> SampleDistinct(std::size_t k, std::size_t n);

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

/// Zipf(s) sampler over {1, ..., n} using precomputed cumulative weights.
/// s = 0 degenerates to uniform.
class ZipfDistribution {
 public:
  ZipfDistribution(std::size_t n, double s);

  /// Draws a value in [1, n].
  std::size_t Sample(Rng* rng) const;

  std::size_t n() const { return cumulative_.size(); }

 private:
  std::vector<double> cumulative_;
};

}  // namespace setalg::util

#endif  // SETALG_UTIL_RNG_H_
