#include "stats/stats.h"

#include <algorithm>
#include <sstream>
#include <unordered_set>

#include "util/check.h"

namespace setalg::stats {

std::uint64_t ColumnStats::Width() const {
  if (distinct == 0) return 0;
  return static_cast<std::uint64_t>(max_value - min_value) + 1;
}

RelationStats ComputeRelationStats(const core::Relation& relation) {
  RelationStats stats;
  stats.arity = relation.arity();
  stats.cardinality = relation.size();
  stats.columns.resize(relation.arity());
  if (relation.empty() || relation.arity() == 0) return stats;

  // The storage is sorted lexicographically, so column 1 distincts (and
  // the group runs of a binary relation) fall out of run boundaries; the
  // other columns use a hash set each.
  std::vector<std::unordered_set<core::Value>> seen(relation.arity());
  for (std::size_t c = 1; c < relation.arity(); ++c) {
    seen[c].reserve(relation.size() * 2);
  }

  const bool binary = relation.arity() == 2;
  core::Value run_key = relation.tuple(0)[0];
  std::size_t run_length = 0;
  auto close_group = [&](std::size_t length) {
    if (!binary) return;
    GroupStats& g = stats.groups;
    ++g.num_groups;
    g.min_group_size =
        g.num_groups == 1 ? length : std::min(g.min_group_size, length);
    g.max_group_size = std::max(g.max_group_size, length);
  };

  for (std::size_t i = 0; i < relation.size(); ++i) {
    core::TupleView t = relation.tuple(i);
    for (std::size_t c = 0; c < relation.arity(); ++c) {
      ColumnStats& col = stats.columns[c];
      if (i == 0) {
        col.min_value = col.max_value = t[c];
      } else {
        col.min_value = std::min(col.min_value, t[c]);
        col.max_value = std::max(col.max_value, t[c]);
      }
      if (c > 0) seen[c].insert(t[c]);
    }
    if (t[0] != run_key) {
      ++stats.columns[0].distinct;
      close_group(run_length);
      run_key = t[0];
      run_length = 0;
    }
    ++run_length;
  }
  ++stats.columns[0].distinct;
  close_group(run_length);
  for (std::size_t c = 1; c < relation.arity(); ++c) {
    stats.columns[c].distinct = seen[c].size();
  }
  if (binary && stats.groups.num_groups > 0) {
    stats.groups.avg_group_size = static_cast<double>(stats.cardinality) /
                                  static_cast<double>(stats.groups.num_groups);
  }
  return stats;
}

std::string RelationStats::ToString() const {
  std::ostringstream out;
  out << "card=" << cardinality;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out << " col" << c + 1 << "{distinct=" << columns[c].distinct
        << ", range=[" << columns[c].min_value << "," << columns[c].max_value
        << "]}";
  }
  if (arity == 2) {
    out << " groups{n=" << groups.num_groups << ", size=" << groups.min_group_size
        << "/" << groups.avg_group_size << "/" << groups.max_group_size << "}";
  }
  return out.str();
}

VersionVector SnapshotVersions(const core::DatabaseView& db,
                               std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  VersionVector versions;
  versions.reserve(names.size());
  for (auto& name : names) {
    const std::uint64_t version = db.relation_version(name);
    versions.emplace_back(std::move(name), version);
  }
  return versions;
}

bool VersionsMatch(const core::DatabaseView& db, const VersionVector& versions) {
  for (const auto& [name, version] : versions) {
    if (db.relation_version(name) != version) return false;
  }
  return true;
}

DatabaseStats::DatabaseStats(const core::DatabaseView* db) : db_(db) {
  SETALG_CHECK(db != nullptr);
}

const RelationStats* DatabaseStats::Get(const std::string& name) const {
  if (!db_->schema().HasRelation(name)) return nullptr;
  const std::uint64_t version = db_->relation_version(name);
  auto it = cache_.find(name);
  if (it == cache_.end() || it->second.version != version) {
    Entry entry;
    entry.version = version;
    entry.stats = ComputeRelationStats(db_->relation(name));
    ++recompute_count_;
    it = cache_.insert_or_assign(name, std::move(entry)).first;
  }
  return &it->second.stats;
}

}  // namespace setalg::stats
