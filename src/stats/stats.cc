#include "stats/stats.h"

#include <algorithm>
#include <limits>
#include <sstream>
#include <unordered_set>

#include "util/check.h"

namespace setalg::stats {

std::uint64_t RangeWidth(core::Value lo, core::Value hi) {
  if (lo > hi) return 0;
  // Unsigned subtraction is well-defined for any pair of int64 values
  // (the signed difference overflows for e.g. lo = INT64_MIN, hi > 0).
  const std::uint64_t diff =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  return diff == std::numeric_limits<std::uint64_t>::max() ? diff : diff + 1;
}

std::uint64_t ColumnStats::Width() const {
  if (distinct == 0) return 0;
  return RangeWidth(min_value, max_value);
}

Histogram BuildHistogram(const std::vector<core::Value>& sorted_values,
                         std::size_t max_buckets) {
  Histogram h;
  if (sorted_values.empty() || max_buckets == 0) return h;
  h.min_value = sorted_values.front();
  h.total = sorted_values.size();
  const std::uint64_t depth = (h.total + max_buckets - 1) / max_buckets;
  std::uint64_t count = 0;
  std::uint64_t distinct = 0;
  for (std::size_t i = 0; i < sorted_values.size();) {
    // Runs of equal values go into one bucket whole, so a bucket boundary
    // is always a value boundary.
    std::size_t j = i;
    while (j < sorted_values.size() && sorted_values[j] == sorted_values[i]) ++j;
    count += j - i;
    ++distinct;
    if (count >= depth || j == sorted_values.size()) {
      h.upper.push_back(sorted_values[i]);
      h.counts.push_back(count);
      h.distincts.push_back(distinct);
      count = 0;
      distinct = 0;
    }
    i = j;
  }
  return h;
}

double Histogram::SelectivityLeq(core::Value v) const {
  if (total == 0 || v < min_value) return 0.0;
  double rows = 0.0;
  core::Value lower = min_value;
  for (std::size_t b = 0; b < buckets(); ++b) {
    if (v >= upper[b]) {
      rows += static_cast<double>(counts[b]);
      // upper[b] == INT64_MAX only in the last bucket (values ascend).
      if (upper[b] == std::numeric_limits<core::Value>::max()) break;
      lower = upper[b] + 1;
      continue;
    }
    const double width = static_cast<double>(RangeWidth(lower, upper[b]));
    const double covered = static_cast<double>(RangeWidth(lower, v));
    rows += static_cast<double>(counts[b]) *
            std::min(1.0, covered / std::max(1.0, width));
    break;
  }
  return rows / static_cast<double>(total);
}

double Histogram::DistinctLeq(core::Value v) const {
  if (total == 0 || v < min_value) return 0.0;
  double values = 0.0;
  core::Value lower = min_value;
  for (std::size_t b = 0; b < buckets(); ++b) {
    if (v >= upper[b]) {
      values += static_cast<double>(distincts[b]);
      if (upper[b] == std::numeric_limits<core::Value>::max()) break;
      lower = upper[b] + 1;
      continue;
    }
    const double width = static_cast<double>(RangeWidth(lower, upper[b]));
    const double covered = static_cast<double>(RangeWidth(lower, v));
    values += static_cast<double>(distincts[b]) *
              std::min(1.0, covered / std::max(1.0, width));
    break;
  }
  return values;
}

double Histogram::ExpectedFrequency() const {
  if (total == 0) return 0.0;
  double expected = 0.0;
  for (std::size_t b = 0; b < buckets(); ++b) {
    const double c = static_cast<double>(counts[b]);
    const double d = std::max(1.0, static_cast<double>(distincts[b]));
    expected += (c / static_cast<double>(total)) * (c / d);
  }
  return expected;
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << "hist{buckets=" << buckets() << ", total=" << total << ", efreq="
      << ExpectedFrequency() << "}";
  return out.str();
}

RelationStats ComputeRelationStats(const core::Relation& relation) {
  RelationStats stats;
  stats.arity = relation.arity();
  stats.cardinality = relation.size();
  stats.columns.resize(relation.arity());
  if (relation.empty() || relation.arity() == 0) return stats;

  // The storage is sorted lexicographically, so column 1 distincts (and
  // the group runs of a binary relation) fall out of run boundaries; the
  // other columns use a hash set each.
  std::vector<std::unordered_set<core::Value>> seen(relation.arity());
  for (std::size_t c = 1; c < relation.arity(); ++c) {
    seen[c].reserve(relation.size() * 2);
  }

  // Per-column value streams for the histograms: column 0 arrives sorted
  // (the storage is lexicographic), the others sort once after the scan.
  std::vector<std::vector<core::Value>> values(relation.arity());
  for (std::size_t c = 0; c < relation.arity(); ++c) {
    values[c].reserve(relation.size());
  }
  std::vector<core::Value> group_sizes;

  const bool binary = relation.arity() == 2;
  core::Value run_key = relation.tuple(0)[0];
  std::size_t run_length = 0;
  auto close_group = [&](std::size_t length) {
    if (!binary) return;
    GroupStats& g = stats.groups;
    ++g.num_groups;
    g.min_group_size =
        g.num_groups == 1 ? length : std::min(g.min_group_size, length);
    g.max_group_size = std::max(g.max_group_size, length);
    group_sizes.push_back(static_cast<core::Value>(length));
  };

  for (std::size_t i = 0; i < relation.size(); ++i) {
    core::TupleView t = relation.tuple(i);
    for (std::size_t c = 0; c < relation.arity(); ++c) {
      ColumnStats& col = stats.columns[c];
      if (i == 0) {
        col.min_value = col.max_value = t[c];
      } else {
        col.min_value = std::min(col.min_value, t[c]);
        col.max_value = std::max(col.max_value, t[c]);
      }
      if (c > 0) seen[c].insert(t[c]);
      values[c].push_back(t[c]);
    }
    if (t[0] != run_key) {
      ++stats.columns[0].distinct;
      close_group(run_length);
      run_key = t[0];
      run_length = 0;
    }
    ++run_length;
  }
  ++stats.columns[0].distinct;
  close_group(run_length);
  for (std::size_t c = 1; c < relation.arity(); ++c) {
    stats.columns[c].distinct = seen[c].size();
  }
  if (binary && stats.groups.num_groups > 0) {
    stats.groups.avg_group_size = static_cast<double>(stats.cardinality) /
                                  static_cast<double>(stats.groups.num_groups);
    std::sort(group_sizes.begin(), group_sizes.end());
    stats.groups.size_histogram = BuildHistogram(group_sizes);
  }
  for (std::size_t c = 0; c < relation.arity(); ++c) {
    if (c > 0) std::sort(values[c].begin(), values[c].end());
    stats.columns[c].histogram = BuildHistogram(values[c]);
  }
  return stats;
}

Histogram MergeHistograms(const std::vector<const Histogram*>& parts,
                          std::size_t max_buckets) {
  // Gather every part bucket as one (upper, count, distinct) triple.
  struct Bucket {
    core::Value upper;
    std::uint64_t count;
    std::uint64_t distinct;
  };
  std::vector<Bucket> buckets;
  Histogram merged;
  bool first = true;
  for (const Histogram* part : parts) {
    if (part == nullptr || part->empty()) continue;
    if (first || part->min_value < merged.min_value) {
      merged.min_value = part->min_value;
      first = false;
    }
    merged.total += part->total;
    for (std::size_t b = 0; b < part->buckets(); ++b) {
      buckets.push_back({part->upper[b], part->counts[b], part->distincts[b]});
    }
  }
  if (buckets.empty() || max_buckets == 0) return Histogram{};
  std::sort(buckets.begin(), buckets.end(),
            [](const Bucket& a, const Bucket& b) { return a.upper < b.upper; });
  // Coalesce in upper-bound order down to the bucket budget, keeping each
  // output bucket near the equi-depth target.
  const std::uint64_t depth = (merged.total + max_buckets - 1) / max_buckets;
  std::uint64_t count = 0;
  std::uint64_t distinct = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    count += buckets[i].count;
    distinct += buckets[i].distinct;
    const bool boundary = i + 1 == buckets.size() ||
                          (count >= depth && buckets[i + 1].upper != buckets[i].upper);
    if (boundary) {
      merged.upper.push_back(buckets[i].upper);
      merged.counts.push_back(count);
      merged.distincts.push_back(distinct);
      count = 0;
      distinct = 0;
    }
  }
  return merged;
}

RelationStats MergeShardStats(const std::vector<const RelationStats*>& shards,
                              std::size_t key_column) {
  RelationStats out;
  std::vector<const RelationStats*> live;
  for (const RelationStats* shard : shards) {
    if (shard == nullptr) continue;
    live.push_back(shard);
    out.arity = shard->arity;
    out.cardinality += shard->cardinality;
  }
  out.columns.resize(out.arity);
  for (std::size_t c = 0; c < out.arity; ++c) {
    ColumnStats& col = out.columns[c];
    std::vector<const Histogram*> histograms;
    std::size_t distinct_sum = 0;
    bool any = false;
    for (const RelationStats* shard : live) {
      if (c >= shard->columns.size()) continue;
      const ColumnStats& part = shard->columns[c];
      if (part.distinct == 0) continue;  // Empty shard column.
      distinct_sum += part.distinct;
      if (!any) {
        col.min_value = part.min_value;
        col.max_value = part.max_value;
        any = true;
      } else {
        col.min_value = std::min(col.min_value, part.min_value);
        col.max_value = std::max(col.max_value, part.max_value);
      }
      histograms.push_back(&part.histogram);
    }
    if (!any) continue;
    // The key column's values are disjoint across shards, so the sum is
    // exact; elsewhere it is an upper bound, capped by the range width.
    col.distinct = distinct_sum;
    if (c + 1 != key_column) {
      const std::uint64_t width = RangeWidth(col.min_value, col.max_value);
      if (width != 0 && static_cast<std::uint64_t>(col.distinct) > width) {
        col.distinct = static_cast<std::size_t>(width);
      }
    }
    col.histogram = MergeHistograms(histograms);
  }
  if (out.arity == 2 && key_column == 1) {
    GroupStats& g = out.groups;
    std::vector<const Histogram*> size_histograms;
    for (const RelationStats* shard : live) {
      const GroupStats& part = shard->groups;
      if (part.num_groups == 0) continue;
      g.min_group_size = g.num_groups == 0
                             ? part.min_group_size
                             : std::min(g.min_group_size, part.min_group_size);
      g.max_group_size = std::max(g.max_group_size, part.max_group_size);
      g.num_groups += part.num_groups;
      size_histograms.push_back(&part.size_histogram);
    }
    if (g.num_groups > 0) {
      g.avg_group_size = static_cast<double>(out.cardinality) /
                         static_cast<double>(g.num_groups);
      g.size_histogram = MergeHistograms(size_histograms);
    }
  }
  return out;
}

std::string RelationStats::ToString() const {
  std::ostringstream out;
  out << "card=" << cardinality;
  for (std::size_t c = 0; c < columns.size(); ++c) {
    out << " col" << c + 1 << "{distinct=" << columns[c].distinct
        << ", range=[" << columns[c].min_value << "," << columns[c].max_value
        << "], efreq=" << columns[c].histogram.ExpectedFrequency() << "}";
  }
  if (arity == 2) {
    out << " groups{n=" << groups.num_groups << ", size=" << groups.min_group_size
        << "/" << groups.avg_group_size << "/" << groups.max_group_size
        << ", " << groups.size_histogram.ToString() << "}";
  }
  return out.str();
}

VersionVector SnapshotVersions(const core::DatabaseView& db,
                               std::vector<std::string> names) {
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  VersionVector versions;
  versions.reserve(names.size());
  for (auto& name : names) {
    const std::uint64_t version = db.relation_version(name);
    versions.emplace_back(std::move(name), version);
  }
  return versions;
}

bool VersionsMatch(const core::DatabaseView& db, const VersionVector& versions) {
  for (const auto& [name, version] : versions) {
    if (db.relation_version(name) != version) return false;
  }
  return true;
}

DatabaseStats::DatabaseStats(const core::DatabaseView* db) : db_(db) {
  SETALG_CHECK(db != nullptr);
}

const RelationStats* DatabaseStats::Get(const std::string& name) const {
  if (!db_->schema().HasRelation(name)) return nullptr;
  const std::uint64_t version = db_->relation_version(name);
  auto it = cache_.find(name);
  if (it == cache_.end() || it->second.version != version) {
    Entry entry;
    entry.version = version;
    entry.stats = ComputeRelationStats(db_->relation(name));
    ++recompute_count_;
    it = cache_.insert_or_assign(name, std::move(entry)).first;
  }
  return &it->second.stats;
}

}  // namespace setalg::stats
