// One-pass relation statistics for cost-based planning.
//
// The paper's experiments show that the *right* division/set-join
// algorithm depends on the shape of the inputs — group counts, set sizes,
// divisor size — not just on |D|. This module computes exactly those
// shape parameters in a single pass over each stored relation:
//   - cardinality,
//   - per-column distinct counts, value range (domain width) and an
//     equi-depth histogram (value distribution, per-bucket distinct
//     counts — the skew signal the containment-join formulas need),
//   - for binary relations, the group profile on column 1
//     (number of groups, min/avg/max element-set size and the full
//     group-size distribution as a histogram).
//
// stats::DatabaseStats caches the per-relation statistics against
// core::Database::relation_version(), so repeated Engine runs over an
// unchanged database pay for the pass once; any mutation (SetRelation or
// mutable_relation) invalidates exactly the touched relation.
#ifndef SETALG_STATS_STATS_H_
#define SETALG_STATS_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "core/value.h"

namespace setalg::stats {

/// Width of the inclusive value range [lo, hi], computed in unsigned
/// arithmetic so extreme ranges (e.g. lo = INT64_MIN) never overflow;
/// saturates at UINT64_MAX when the range covers the whole int64 domain.
/// 0 when lo > hi.
std::uint64_t RangeWidth(core::Value lo, core::Value hi);

/// Default bucket budget of the equi-depth histograms below.
inline constexpr std::size_t kHistogramBuckets = 32;

/// An equi-depth histogram over one value stream: buckets of roughly
/// equal row counts, with equal values never straddling a boundary.
/// Each bucket also carries its distinct-value count, so heavy hitters
/// (few values absorbing a whole bucket) stay visible — the shape the
/// min/avg/max summaries erase.
struct Histogram {
  core::Value min_value = 0;
  std::vector<core::Value> upper;        // Inclusive upper bound per bucket.
  std::vector<std::uint64_t> counts;     // Rows per bucket.
  std::vector<std::uint64_t> distincts;  // Distinct values per bucket.
  std::uint64_t total = 0;               // Sum of counts.

  bool empty() const { return total == 0; }
  std::size_t buckets() const { return counts.size(); }

  /// Fraction of rows with value <= v, interpolating uniformly inside
  /// the bucket containing v. 0 for an empty histogram.
  double SelectivityLeq(core::Value v) const;

  /// Approximate number of distinct values <= v (same interpolation).
  double DistinctLeq(core::Value v) const;

  /// Expected number of rows sharing the value of a row drawn uniformly:
  /// sum_b (count_b/total)·(count_b/distinct_b). Under a uniform
  /// distribution this is total/distinct; skew pushes it far higher —
  /// exactly the expected posting length an inverted-index probe pays.
  double ExpectedFrequency() const;

  std::string ToString() const;
};

/// Builds an equi-depth histogram from an already-sorted (ascending,
/// duplicates retained) value vector.
Histogram BuildHistogram(const std::vector<core::Value>& sorted_values,
                         std::size_t max_buckets = kHistogramBuckets);

/// Per-column statistics.
struct ColumnStats {
  std::size_t distinct = 0;
  core::Value min_value = 0;
  core::Value max_value = 0;
  /// Equi-depth value distribution (empty for an empty column).
  Histogram histogram;

  /// max - min + 1 for a nonempty column, else 0. An upper bound on
  /// `distinct` for integer-interned values. Computed via RangeWidth, so
  /// extreme ranges saturate instead of overflowing.
  std::uint64_t Width() const;
};

/// The group profile of a binary relation R(key, element) grouped on the
/// key column — the shape parameter the division and set-join cost
/// formulas depend on. Zeroed for other arities.
struct GroupStats {
  std::size_t num_groups = 0;
  std::size_t min_group_size = 0;
  std::size_t max_group_size = 0;
  double avg_group_size = 0.0;
  /// Distribution of group sizes (one entry per group, value = size) —
  /// what lets the cost model price "how many divisor groups can fit in
  /// a candidate group" instead of assuming every group is average.
  Histogram size_histogram;
};

/// Statistics of one relation, computed in a single pass.
struct RelationStats {
  std::size_t cardinality = 0;
  std::size_t arity = 0;
  std::vector<ColumnStats> columns;
  /// Valid (nonzero) only when arity == 2.
  GroupStats groups;

  std::string ToString() const;
};

/// Computes the statistics of `relation` in one pass over its normalized
/// (sorted, deduplicated) storage. Cost: O(n) hash-set inserts per column
/// plus one O(n log n) sort per non-leading column for its histogram
/// (column 1 and the group sizes fall out of the sorted storage).
RelationStats ComputeRelationStats(const core::Relation& relation);

/// Merges equi-depth histograms over disjoint row sets whose value ranges
/// may interleave (hash shards of one relation): bucket rows/distincts
/// are concatenated in upper-bound order and coalesced back down to
/// `max_buckets`. Totals stay exact; because shard bucket ranges overlap,
/// the merged buckets are no longer strictly disjoint, so the
/// interpolating readers (SelectivityLeq, DistinctLeq) become
/// approximations — ExpectedFrequency, which only reads count/distinct
/// ratios, keeps its meaning.
Histogram MergeHistograms(const std::vector<const Histogram*>& parts,
                          std::size_t max_buckets = kHistogramBuckets);

/// Aggregates per-shard statistics of one relation hash-sharded on
/// `key_column` (1-based) into full-relation statistics. Exact where the
/// sharding contract makes the shards key-disjoint — cardinality, the key
/// column's distinct count, min/max ranges, and (for binary relations
/// sharded on column 1, whose groups never span shards) the whole group
/// profile. Non-key distinct counts sum capped at the merged range width
/// (an upper bound), and histograms merge via MergeHistograms.
RelationStats MergeShardStats(const std::vector<const RelationStats*>& shards,
                              std::size_t key_column);

/// Read access to statistics of stored relations by name. Implementations
/// return nullptr for names they know nothing about; cost formulas then
/// fall back to coarse defaults.
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  virtual const RelationStats* Get(const std::string& name) const = 0;
};

/// A named snapshot of per-relation mutation counters — the invalidation
/// signal every cache derived from stored relations (DatabaseStats, the
/// engine's plan cache) compares against. Kept sorted by name so two
/// snapshots over the same relation set compare element-wise.
using VersionVector = std::vector<std::pair<std::string, std::uint64_t>>;

/// Snapshots db.relation_version(name) for each of `names` (sorted by
/// name; duplicates collapsed). Names outside the schema snapshot as 0.
VersionVector SnapshotVersions(const core::DatabaseView& db,
                               std::vector<std::string> names);

/// True iff none of the snapshotted relations has been mutated since —
/// i.e. re-snapshotting `db` would reproduce `versions` exactly.
bool VersionsMatch(const core::DatabaseView& db, const VersionVector& versions);

/// The caching provider over one database view: statistics are computed
/// on first use and reused until the relation's mutation counter moves.
/// Holds a pointer to the view; not thread-safe (immutable views that
/// need a concurrent provider — txn::Snapshot — carry their own).
class DatabaseStats : public StatsProvider {
 public:
  explicit DatabaseStats(const core::DatabaseView* db);

  const core::DatabaseView& db() const { return *db_; }

  /// Stats of the stored relation `name` (nullptr if not in the schema).
  /// Recomputes iff db().relation_version(name) moved since the last call.
  const RelationStats* Get(const std::string& name) const override;

  /// Number of (re)computations so far — observable cache behavior for
  /// tests.
  std::size_t recompute_count() const { return recompute_count_; }

 private:
  struct Entry {
    std::uint64_t version = 0;
    RelationStats stats;
  };

  const core::DatabaseView* db_;
  mutable std::unordered_map<std::string, Entry> cache_;
  mutable std::size_t recompute_count_ = 0;
};

}  // namespace setalg::stats

#endif  // SETALG_STATS_STATS_H_
