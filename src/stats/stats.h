// One-pass relation statistics for cost-based planning.
//
// The paper's experiments show that the *right* division/set-join
// algorithm depends on the shape of the inputs — group counts, set sizes,
// divisor size — not just on |D|. This module computes exactly those
// shape parameters in a single pass over each stored relation:
//   - cardinality,
//   - per-column distinct counts and value range (domain width),
//   - for binary relations, the group profile on column 1
//     (number of groups, min/avg/max element-set size).
//
// stats::DatabaseStats caches the per-relation statistics against
// core::Database::relation_version(), so repeated Engine runs over an
// unchanged database pay for the pass once; any mutation (SetRelation or
// mutable_relation) invalidates exactly the touched relation.
#ifndef SETALG_STATS_STATS_H_
#define SETALG_STATS_STATS_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "core/database.h"
#include "core/relation.h"
#include "core/value.h"

namespace setalg::stats {

/// Per-column statistics.
struct ColumnStats {
  std::size_t distinct = 0;
  core::Value min_value = 0;
  core::Value max_value = 0;

  /// max - min + 1 for a nonempty column, else 0. An upper bound on
  /// `distinct` for integer-interned values.
  std::uint64_t Width() const;
};

/// The group profile of a binary relation R(key, element) grouped on the
/// key column — the shape parameter the division and set-join cost
/// formulas depend on. Zeroed for other arities.
struct GroupStats {
  std::size_t num_groups = 0;
  std::size_t min_group_size = 0;
  std::size_t max_group_size = 0;
  double avg_group_size = 0.0;
};

/// Statistics of one relation, computed in a single pass.
struct RelationStats {
  std::size_t cardinality = 0;
  std::size_t arity = 0;
  std::vector<ColumnStats> columns;
  /// Valid (nonzero) only when arity == 2.
  GroupStats groups;

  std::string ToString() const;
};

/// Computes the statistics of `relation` in one pass over its normalized
/// (sorted, deduplicated) storage. Cost: O(n) hash-set inserts per column.
RelationStats ComputeRelationStats(const core::Relation& relation);

/// Read access to statistics of stored relations by name. Implementations
/// return nullptr for names they know nothing about; cost formulas then
/// fall back to coarse defaults.
class StatsProvider {
 public:
  virtual ~StatsProvider() = default;
  virtual const RelationStats* Get(const std::string& name) const = 0;
};

/// A named snapshot of per-relation mutation counters — the invalidation
/// signal every cache derived from stored relations (DatabaseStats, the
/// engine's plan cache) compares against. Kept sorted by name so two
/// snapshots over the same relation set compare element-wise.
using VersionVector = std::vector<std::pair<std::string, std::uint64_t>>;

/// Snapshots db.relation_version(name) for each of `names` (sorted by
/// name; duplicates collapsed). Names outside the schema snapshot as 0.
VersionVector SnapshotVersions(const core::DatabaseView& db,
                               std::vector<std::string> names);

/// True iff none of the snapshotted relations has been mutated since —
/// i.e. re-snapshotting `db` would reproduce `versions` exactly.
bool VersionsMatch(const core::DatabaseView& db, const VersionVector& versions);

/// The caching provider over one database view: statistics are computed
/// on first use and reused until the relation's mutation counter moves.
/// Holds a pointer to the view; not thread-safe (immutable views that
/// need a concurrent provider — txn::Snapshot — carry their own).
class DatabaseStats : public StatsProvider {
 public:
  explicit DatabaseStats(const core::DatabaseView* db);

  const core::DatabaseView& db() const { return *db_; }

  /// Stats of the stored relation `name` (nullptr if not in the schema).
  /// Recomputes iff db().relation_version(name) moved since the last call.
  const RelationStats* Get(const std::string& name) const override;

  /// Number of (re)computations so far — observable cache behavior for
  /// tests.
  std::size_t recompute_count() const { return recompute_count_; }

 private:
  struct Entry {
    std::uint64_t version = 0;
    RelationStats stats;
  };

  const core::DatabaseView* db_;
  mutable std::unordered_map<std::string, Entry> cache_;
  mutable std::size_t recompute_count_ = 0;
};

}  // namespace setalg::stats

#endif  // SETALG_STATS_STATS_H_
