#include "sa/fast_semijoin.h"

#include <algorithm>
#include <limits>
#include <unordered_map>

#include "core/tuple.h"
#include "util/check.h"

namespace setalg::sa {
namespace {

using core::Relation;
using core::Tuple;
using core::TupleView;
using core::Value;
using ra::Cmp;
using ra::JoinAtom;

bool CompareValues(Value a, Cmp op, Value b) {
  switch (op) {
    case Cmp::kEq:
      return a == b;
    case Cmp::kNeq:
      return a != b;
    case Cmp::kLt:
      return a < b;
    case Cmp::kGt:
      return a > b;
  }
  return false;
}

// Per-key aggregate for the keyed min/max kernel: for each equality key of
// the right input, the min and max of the order column, the number of rows
// and the number of distinct values in the ≠ column case.
struct KeyAggregate {
  Value min = std::numeric_limits<Value>::max();
  Value max = std::numeric_limits<Value>::min();
  // For ≠: whether at least two distinct values occur, plus the single
  // value seen otherwise.
  Value first_value = 0;
  bool has_value = false;
  bool two_distinct = false;

  void Update(Value v) {
    min = std::min(min, v);
    max = std::max(max, v);
    if (!has_value) {
      first_value = v;
      has_value = true;
    } else if (v != first_value) {
      two_distinct = true;
    }
  }

  bool Satisfiable(Cmp op, Value left_value) const {
    switch (op) {
      case Cmp::kLt:
        return left_value < max;
      case Cmp::kGt:
        return left_value > min;
      case Cmp::kNeq:
        return two_distinct || (has_value && first_value != left_value);
      case Cmp::kEq:
        return false;  // Equality atoms never reach the aggregate path.
    }
    return false;
  }
};

Relation GroupedScan(const Relation& left, const Relation& right,
                     const std::vector<JoinAtom>& eq,
                     const std::vector<JoinAtom>& residual) {
  Relation out(left.arity());
  if (eq.empty()) {
    for (std::size_t i = 0; i < left.size(); ++i) {
      TupleView lt = left.tuple(i);
      for (std::size_t j = 0; j < right.size(); ++j) {
        TupleView rt = right.tuple(j);
        bool all = true;
        for (const auto& atom : residual) {
          if (!CompareValues(lt[atom.left - 1], atom.op, rt[atom.right - 1])) {
            all = false;
            break;
          }
        }
        if (all) {
          out.Add(lt);
          break;
        }
      }
    }
    return out;
  }
  // Group the right side by its equality key, then scan groups.
  std::unordered_map<Tuple, std::vector<std::uint32_t>, core::TupleHash, core::TupleEq>
      groups;
  Tuple key(eq.size());
  for (std::size_t j = 0; j < right.size(); ++j) {
    TupleView rt = right.tuple(j);
    for (std::size_t k = 0; k < eq.size(); ++k) key[k] = rt[eq[k].right - 1];
    groups[key].push_back(static_cast<std::uint32_t>(j));
  }
  for (std::size_t i = 0; i < left.size(); ++i) {
    TupleView lt = left.tuple(i);
    for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
    auto it = groups.find(key);
    if (it == groups.end()) continue;
    for (std::uint32_t j : it->second) {
      TupleView rt = right.tuple(j);
      bool all = true;
      for (const auto& atom : residual) {
        if (!CompareValues(lt[atom.left - 1], atom.op, rt[atom.right - 1])) {
          all = false;
          break;
        }
      }
      if (all) {
        out.Add(lt);
        break;
      }
    }
  }
  return out;
}

}  // namespace

const char* SemijoinKernelToString(SemijoinKernel kernel) {
  switch (kernel) {
    case SemijoinKernel::kTrivial:
      return "trivial";
    case SemijoinKernel::kHashExistence:
      return "hash-existence";
    case SemijoinKernel::kKeyedMinMax:
      return "keyed-minmax";
    case SemijoinKernel::kGlobalMinMax:
      return "global-minmax";
    case SemijoinKernel::kGroupedScan:
      return "grouped-scan";
  }
  return "?";
}

core::Relation Semijoin(const core::Relation& left, const core::Relation& right,
                        const std::vector<ra::JoinAtom>& atoms,
                        SemijoinKernel* kernel_used) {
  auto report = [&](SemijoinKernel k) {
    if (kernel_used != nullptr) *kernel_used = k;
  };
  for (const auto& atom : atoms) {
    SETALG_CHECK(atom.left >= 1 && atom.left <= left.arity());
    SETALG_CHECK(atom.right >= 1 && atom.right <= right.arity());
  }

  if (left.empty() || right.empty()) {
    report(SemijoinKernel::kTrivial);
    return Relation(left.arity());
  }
  if (atoms.empty()) {
    // ∃b̄ ∈ right holds for every left tuple since right is nonempty.
    report(SemijoinKernel::kTrivial);
    return left;
  }

  std::vector<JoinAtom> eq, residual;
  for (const auto& atom : atoms) {
    (atom.op == Cmp::kEq ? &eq : &residual)->push_back(atom);
  }

  if (residual.empty()) {
    report(SemijoinKernel::kHashExistence);
    std::unordered_map<Tuple, bool, core::TupleHash, core::TupleEq> keys;
    Tuple key(eq.size());
    for (std::size_t j = 0; j < right.size(); ++j) {
      TupleView rt = right.tuple(j);
      for (std::size_t k = 0; k < eq.size(); ++k) key[k] = rt[eq[k].right - 1];
      keys.emplace(key, true);
    }
    Relation out(left.arity());
    for (std::size_t i = 0; i < left.size(); ++i) {
      TupleView lt = left.tuple(i);
      for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
      if (keys.find(key) != keys.end()) out.Add(lt);
    }
    return out;
  }

  if (residual.size() == 1 && residual[0].op != Cmp::kEq) {
    const JoinAtom& order_atom = residual[0];
    if (eq.empty()) {
      // Single pure order/≠ conjunct: one global aggregate suffices.
      report(SemijoinKernel::kGlobalMinMax);
      KeyAggregate aggregate;
      for (std::size_t j = 0; j < right.size(); ++j) {
        aggregate.Update(right.tuple(j)[order_atom.right - 1]);
      }
      Relation out(left.arity());
      for (std::size_t i = 0; i < left.size(); ++i) {
        TupleView lt = left.tuple(i);
        if (aggregate.Satisfiable(order_atom.op, lt[order_atom.left - 1])) {
          out.Add(lt);
        }
      }
      return out;
    }
    // Equalities + one order/≠ conjunct: per-key aggregates.
    report(SemijoinKernel::kKeyedMinMax);
    std::unordered_map<Tuple, KeyAggregate, core::TupleHash, core::TupleEq> aggregates;
    Tuple key(eq.size());
    for (std::size_t j = 0; j < right.size(); ++j) {
      TupleView rt = right.tuple(j);
      for (std::size_t k = 0; k < eq.size(); ++k) key[k] = rt[eq[k].right - 1];
      aggregates[key].Update(rt[order_atom.right - 1]);
    }
    Relation out(left.arity());
    for (std::size_t i = 0; i < left.size(); ++i) {
      TupleView lt = left.tuple(i);
      for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
      auto it = aggregates.find(key);
      if (it != aggregates.end() &&
          it->second.Satisfiable(order_atom.op, lt[order_atom.left - 1])) {
        out.Add(lt);
      }
    }
    return out;
  }

  report(SemijoinKernel::kGroupedScan);
  return GroupedScan(left, right, eq, residual);
}

core::Relation AntiSemijoin(const core::Relation& left, const core::Relation& right,
                            const std::vector<ra::JoinAtom>& atoms) {
  return core::Difference(left, Semijoin(left, right, atoms));
}

}  // namespace setalg::sa
