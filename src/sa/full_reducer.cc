#include "sa/full_reducer.h"

#include <algorithm>
#include <map>
#include <set>

#include "sa/fast_semijoin.h"
#include "util/check.h"

namespace setalg::sa {
namespace {

// Applies target := target ⋉ source on the linked columns. Returns the
// number of tuples removed.
std::size_t ApplySemijoin(core::Database* db, const std::string& target,
                          std::size_t target_column, const std::string& source,
                          std::size_t source_column) {
  const core::Relation& t = db->relation(target);
  const core::Relation& s = db->relation(source);
  const std::size_t before = t.size();
  core::Relation reduced =
      Semijoin(t, s, {{target_column, ra::Cmp::kEq, source_column}});
  const std::size_t after = reduced.size();
  db->SetRelation(target, std::move(reduced));
  return before - after;
}

std::vector<std::string> LinkRelations(const std::vector<JoinLink>& links) {
  std::set<std::string> names;
  for (const auto& link : links) {
    names.insert(link.left);
    names.insert(link.right);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace

ReductionReport ReduceToFixpoint(core::Database* db,
                                 const std::vector<JoinLink>& links) {
  ReductionReport report;
  bool changed = true;
  while (changed) {
    changed = false;
    ++report.passes;
    for (const auto& link : links) {
      std::size_t removed =
          ApplySemijoin(db, link.left, link.left_column, link.right, link.right_column);
      removed +=
          ApplySemijoin(db, link.right, link.right_column, link.left, link.left_column);
      report.steps += 2;
      report.tuples_removed += removed;
      if (removed > 0) changed = true;
    }
  }
  return report;
}

bool LinksFormForest(const std::vector<JoinLink>& links) {
  // Union-find over relation names; a link joining two already-connected
  // relations closes a cycle.
  std::map<std::string, std::string> parent;
  auto find = [&](std::string x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& name : LinkRelations(links)) parent[name] = name;
  for (const auto& link : links) {
    const std::string a = find(link.left);
    const std::string b = find(link.right);
    if (a == b) return false;
    parent[a] = b;
  }
  return true;
}

ReductionReport TreeReduce(core::Database* db, const std::vector<JoinLink>& links) {
  SETALG_CHECK_STREAM(LinksFormForest(links))
      << "TreeReduce requires a forest of join links";
  ReductionReport report;
  report.passes = 2;

  // Build adjacency; then order edges by a rooted traversal (per component).
  const std::vector<std::string> names = LinkRelations(links);
  std::map<std::string, std::vector<std::size_t>> adjacent;
  for (std::size_t e = 0; e < links.size(); ++e) {
    adjacent[links[e].left].push_back(e);
    adjacent[links[e].right].push_back(e);
  }

  // Edges in visit order: parent-edge recorded when first reaching a node.
  struct DirectedEdge {
    std::string parent, child;
    std::size_t parent_column, child_column;
  };
  std::vector<DirectedEdge> down_order;  // Root-to-leaf direction.
  std::set<std::string> visited;
  for (const auto& root : names) {
    if (visited.count(root) > 0) continue;
    std::vector<std::string> stack = {root};
    visited.insert(root);
    while (!stack.empty()) {
      const std::string node = stack.back();
      stack.pop_back();
      for (std::size_t e : adjacent[node]) {
        const auto& link = links[e];
        const std::string other = link.left == node ? link.right : link.left;
        if (visited.count(other) > 0) continue;
        visited.insert(other);
        DirectedEdge edge;
        edge.parent = node;
        edge.child = other;
        edge.parent_column = link.left == node ? link.left_column : link.right_column;
        edge.child_column = link.left == node ? link.right_column : link.left_column;
        down_order.push_back(edge);
        stack.push_back(other);
      }
    }
  }

  // Pass 1 (leaves to root): process edges in reverse visit order, reducing
  // each parent by its child.
  for (auto it = down_order.rbegin(); it != down_order.rend(); ++it) {
    report.tuples_removed += ApplySemijoin(db, it->parent, it->parent_column,
                                           it->child, it->child_column);
    ++report.steps;
  }
  // Pass 2 (root to leaves): reduce each child by its parent.
  for (const auto& edge : down_order) {
    report.tuples_removed += ApplySemijoin(db, edge.child, edge.child_column,
                                           edge.parent, edge.parent_column);
    ++report.steps;
  }
  return report;
}

}  // namespace setalg::sa
