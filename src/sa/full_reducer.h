// Semijoin programs in the sense of Bernstein–Chiu and Bernstein–Goodman
// (the paper's references [5,6]): reducing the relations of a join query by
// semijoins only, removing dangling tuples.
//
// For acyclic (tree-shaped) join queries a two-pass program (leaves→root,
// root→leaves) yields the full reduction; for cyclic queries semijoins
// alone cannot always fully reduce — the fixpoint loop still reaches the
// best semijoin-achievable reduction. This is the classical backdrop for
// the paper's Section 5 remark that cyclic queries (like the beer-drinkers
// query Q) are not computable by semijoins.
#ifndef SETALG_SA_FULL_REDUCER_H_
#define SETALG_SA_FULL_REDUCER_H_

#include <string>
#include <vector>

#include "core/database.h"

namespace setalg::sa {

/// An equality link between two relations of a join query: columns
/// `left_column` of `left` and `right_column` of `right` must be equal
/// (1-based columns).
struct JoinLink {
  std::string left;
  std::size_t left_column;
  std::string right;
  std::size_t right_column;
};

/// Result of running a semijoin program.
struct ReductionReport {
  /// Semijoin applications performed.
  std::size_t steps = 0;
  /// Passes over the link list (fixpoint variant).
  std::size_t passes = 0;
  /// Tuples removed across all relations.
  std::size_t tuples_removed = 0;
};

/// Repeatedly applies both directions of every link until no relation
/// shrinks. Always terminates (sizes strictly decrease); reaches the
/// greatest semijoin-consistent sub-database.
ReductionReport ReduceToFixpoint(core::Database* db, const std::vector<JoinLink>& links);

/// Two-pass full reducer for tree queries. `links` must form a forest over
/// the referenced relations (checked); the program semijoins leaves upward
/// then the root back downward. For tree queries the result equals the
/// fixpoint reduction (property-tested).
ReductionReport TreeReduce(core::Database* db, const std::vector<JoinLink>& links);

/// True iff the link graph (relations as vertices) is a forest.
bool LinksFormForest(const std::vector<JoinLink>& links);

}  // namespace setalg::sa

#endif  // SETALG_SA_FULL_REDUCER_H_
