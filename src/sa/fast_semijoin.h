// Standalone semijoin kernels.
//
// Semijoin algebra expressions are linear in intermediate-result size by
// definition; these kernels additionally make the common cases fast:
//   - equality-only conditions: one hash probe per left row,
//   - equality plus one order conjunct: per-key min/max aggregates,
//   - a single pure order conjunct: global min/max,
//   - anything else: grouped scan fallback.
// The generic evaluator (ra/eval.h) is the semantic reference; these
// kernels must agree with it (property-tested).
#ifndef SETALG_SA_FAST_SEMIJOIN_H_
#define SETALG_SA_FAST_SEMIJOIN_H_

#include <vector>

#include "core/relation.h"
#include "ra/expr.h"

namespace setalg::sa {

/// Which specialized path Semijoin() took (exposed for tests/benches).
enum class SemijoinKernel {
  kTrivial,        // Empty condition or empty inputs.
  kHashExistence,  // Equality-only θ.
  kKeyedMinMax,    // Equalities + one order conjunct.
  kGlobalMinMax,   // Single pure order conjunct.
  kGroupedScan,    // General fallback.
};

const char* SemijoinKernelToString(SemijoinKernel kernel);

/// Computes left ⋉_θ right. If `kernel_used` is non-null it reports the
/// selected kernel.
core::Relation Semijoin(const core::Relation& left, const core::Relation& right,
                        const std::vector<ra::JoinAtom>& atoms,
                        SemijoinKernel* kernel_used = nullptr);

/// Computes the anti-semijoin left ▷_θ right = left − (left ⋉_θ right).
core::Relation AntiSemijoin(const core::Relation& left, const core::Relation& right,
                            const std::vector<ra::JoinAtom>& atoms);

}  // namespace setalg::sa

#endif  // SETALG_SA_FAST_SEMIJOIN_H_
