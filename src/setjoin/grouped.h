// Grouped view of a binary relation R(key, element): each key mapped to its
// sorted element set. The common substrate of the division and set-join
// algorithms ("set-valued attributes" materialized from first normal form).
#ifndef SETALG_SETJOIN_GROUPED_H_
#define SETALG_SETJOIN_GROUPED_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "core/relation.h"

namespace setalg::setjoin {

/// One group: a key and its element set (sorted, unique).
struct Group {
  core::Value key;
  std::vector<core::Value> elements;
};

class GroupedBuilder;

/// Groups of a binary relation, ordered by key.
class GroupedRelation {
 public:
  /// Groups `relation` (arity 2) by `key_column` (1-based; the other
  /// column provides the elements).
  static GroupedRelation FromBinary(const core::Relation& relation,
                                    std::size_t key_column = 1);

  /// Wraps groups that are already ordered by key with sorted, unique
  /// element sets — the partition-aware builders' output. Invariants are
  /// the caller's responsibility (checked in debug builds only).
  static GroupedRelation FromGroups(std::vector<Group> groups);

  std::size_t NumGroups() const { return groups_.size(); }
  const Group& group(std::size_t i) const { return groups_[i]; }
  const std::vector<Group>& groups() const { return groups_; }

  /// Finds a group by key; returns nullptr if absent.
  const Group* Find(core::Value key) const;

  /// Total number of (key, element) pairs.
  std::size_t TotalElements() const;

  /// The largest element set size.
  std::size_t MaxGroupSize() const;

  /// Consumes the view, returning its groups (still ordered by key) —
  /// the moving counterpart of groups() for the partitioners.
  std::vector<Group> TakeGroups() && { return std::move(groups_); }

 private:
  friend class GroupedBuilder;

  std::vector<Group> groups_;
};

/// Incremental grouping adapter: feed (key, element) pairs in any order —
/// e.g. batch-at-a-time from the engine's set-join operators — then
/// Build() the grouped view once. GroupedRelation::FromBinary (and hence
/// AsGrouped) is a thin wrapper over this builder, so the batched and the
/// whole-relation consumers share one grouping implementation.
class GroupedBuilder {
 public:
  void Reserve(std::size_t pairs) { pairs_.reserve(pairs); }

  void Add(core::Value key, core::Value element) {
    pairs_.emplace_back(key, element);
  }

  /// Sorts and deduplicates the accumulated pairs into groups ordered by
  /// key with sorted, unique element sets. Consumes the builder.
  GroupedRelation Build() &&;

 private:
  std::vector<std::pair<core::Value, core::Value>> pairs_;
};

/// The shared spelling of "group this binary relation" used by the
/// binary-relation convenience overloads (setjoin.h), the division
/// kernels and the engine's set-join operators. Forwards to
/// GroupedRelation::FromBinary, which remains the implementation.
GroupedRelation AsGrouped(const core::Relation& relation, std::size_t key_column = 1);

/// The partition a key is routed to under `partitions`-way hash
/// partitioning (Mix64 of the key, so consecutive keys spread). The one
/// shared routing function: row-level partitioning (engine/parallel.h)
/// and the group-level partitioner below must agree, or a group could be
/// split across partitions and parallel kernels would lose rows.
std::size_t PartitionOfKey(core::Value key, std::size_t partitions);

/// Partition-aware grouped builder: splits a grouped view into
/// `partitions` grouped views, routing each group (whole — a group never
/// spans partitions) to PartitionOfKey(group.key). Groups keep their key
/// order inside each partition, and the partitioning is deterministic, so
/// per-partition kernel outputs merge identically across runs and thread
/// counts. Consumes the input (groups are moved, not copied).
std::vector<GroupedRelation> PartitionByKey(GroupedRelation grouped,
                                            std::size_t partitions);

/// True iff sorted vector `sub` ⊆ sorted vector `super`.
bool SortedSubset(const std::vector<core::Value>& sub,
                  const std::vector<core::Value>& super);

/// True iff the sorted vectors intersect.
bool SortedIntersects(const std::vector<core::Value>& a,
                      const std::vector<core::Value>& b);

/// 64-bit Bloom-style signature of an element set: each element sets one
/// bit. s ⊆ r implies sig(s) & ~sig(r) == 0 (one-sided filter).
std::uint64_t SetSignature(const std::vector<core::Value>& elements);

/// Order-independent exact hash of the element set (for set-equality join).
std::uint64_t SetHash(const std::vector<core::Value>& elements);

}  // namespace setalg::setjoin

#endif  // SETALG_SETJOIN_GROUPED_H_
