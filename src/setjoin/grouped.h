// Grouped view of a binary relation R(key, element): each key mapped to its
// sorted element set. The common substrate of the division and set-join
// algorithms ("set-valued attributes" materialized from first normal form).
#ifndef SETALG_SETJOIN_GROUPED_H_
#define SETALG_SETJOIN_GROUPED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/relation.h"

namespace setalg::setjoin {

/// One group: a key and its element set (sorted, unique).
struct Group {
  core::Value key;
  std::vector<core::Value> elements;
};

/// Groups of a binary relation, ordered by key.
class GroupedRelation {
 public:
  /// Groups `relation` (arity 2) by `key_column` (1-based; the other
  /// column provides the elements).
  static GroupedRelation FromBinary(const core::Relation& relation,
                                    std::size_t key_column = 1);

  std::size_t NumGroups() const { return groups_.size(); }
  const Group& group(std::size_t i) const { return groups_[i]; }
  const std::vector<Group>& groups() const { return groups_; }

  /// Finds a group by key; returns nullptr if absent.
  const Group* Find(core::Value key) const;

  /// Total number of (key, element) pairs.
  std::size_t TotalElements() const;

  /// The largest element set size.
  std::size_t MaxGroupSize() const;

 private:
  std::vector<Group> groups_;
};

/// The shared spelling of "group this binary relation" used by the
/// binary-relation convenience overloads (setjoin.h), the division
/// kernels and the engine's set-join operators. Forwards to
/// GroupedRelation::FromBinary, which remains the implementation.
GroupedRelation AsGrouped(const core::Relation& relation, std::size_t key_column = 1);

/// True iff sorted vector `sub` ⊆ sorted vector `super`.
bool SortedSubset(const std::vector<core::Value>& sub,
                  const std::vector<core::Value>& super);

/// True iff the sorted vectors intersect.
bool SortedIntersects(const std::vector<core::Value>& a,
                      const std::vector<core::Value>& b);

/// 64-bit Bloom-style signature of an element set: each element sets one
/// bit. s ⊆ r implies sig(s) & ~sig(r) == 0 (one-sided filter).
std::uint64_t SetSignature(const std::vector<core::Value>& elements);

/// Order-independent exact hash of the element set (for set-equality join).
std::uint64_t SetHash(const std::vector<core::Value>& elements);

}  // namespace setalg::setjoin

#endif  // SETALG_SETJOIN_GROUPED_H_
