// Relational division R(A,B) ÷ S(B), in both variants:
//   containment: { a | { b | R(a,b) } ⊇ S }
//   equality:    { a | { b | R(a,b) } = S }
//
// Implemented algorithms, following Graefe's taxonomy ("Relational
// division: four algorithms and their performance", the paper's [11,12]):
//   - nested-loop division: per candidate, probe every divisor element;
//   - sort-merge division: merge each sorted group against the sorted divisor;
//   - hash-division: divisor hash table + per-candidate bitmaps;
//   - aggregate (counting) division: count divisor hits per candidate —
//     the O(n log n) strategy the paper's Section 5 expresses with
//     grouping and count aggregation;
//   - classic-RA division: evaluates the textbook expression
//     π_A(R) − π_A((π_A(R) × S) − R) through the instrumented RA
//     evaluator. Proposition 26 proves any such RA expression must
//     materialize Ω(n²) intermediates — this is the experiment's baseline.
#ifndef SETALG_SETJOIN_DIVISION_H_
#define SETALG_SETJOIN_DIVISION_H_

#include <functional>
#include <string>
#include <vector>

#include "core/relation.h"
#include "ra/eval.h"
#include "ra/expr.h"

namespace setalg::setjoin {

enum class DivisionAlgorithm {
  kNestedLoop,
  kSortMerge,
  kHashDivision,
  kAggregate,
  kClassicRa,
};

const char* DivisionAlgorithmToString(DivisionAlgorithm algorithm);

/// All algorithms, for parameterized tests/benches.
std::vector<DivisionAlgorithm> AllDivisionAlgorithms();

/// Containment division. `r` has arity 2, `s` arity 1. Returns the unary
/// relation of qualifying A values. If `stats` is non-null and the
/// algorithm is kClassicRa, evaluation statistics are recorded there.
core::Relation Divide(const core::Relation& r, const core::Relation& s,
                      DivisionAlgorithm algorithm, ra::EvalStats* stats = nullptr);

/// Set-equality division: A values whose B-set is exactly S.
core::Relation DivideEqual(const core::Relation& r, const core::Relation& s,
                           DivisionAlgorithm algorithm,
                           ra::EvalStats* stats = nullptr);

/// Streaming (row-source) division: `next` yields the dividend's distinct
/// (a, b) tuples one at a time, returning false when exhausted — e.g. the
/// engine's batched probe side. Exactly the Divide/DivideEqual semantics
/// (one shared kernel implementation); `algorithm` must be kHashDivision
/// or kAggregate, the single-pass strategies with O(#groups) state.
core::Relation DivideStream(const std::function<bool(core::TupleView*)>& next,
                            const core::Relation& s, DivisionAlgorithm algorithm,
                            bool equality);

/// The textbook RA expression π_A(R) − π_A((π_A(R) × S) − R) over relation
/// names `r_name` (binary) and `s_name` (unary).
ra::ExprPtr ClassicDivisionExpr(const std::string& r_name, const std::string& s_name);

/// The RA expression for equality division: containment division minus the
/// A's that relate to some b outside S.
ra::ExprPtr ClassicEqualityDivisionExpr(const std::string& r_name,
                                        const std::string& s_name);

}  // namespace setalg::setjoin

#endif  // SETALG_SETJOIN_DIVISION_H_
