#include "setjoin/grouped.h"

#include <algorithm>
#include <utility>

#include "util/check.h"
#include "util/hash.h"

namespace setalg::setjoin {

GroupedRelation GroupedBuilder::Build() && {
  GroupedRelation grouped;
  std::sort(pairs_.begin(), pairs_.end());
  for (const auto& [key, element] : pairs_) {
    if (grouped.groups_.empty() || grouped.groups_.back().key != key) {
      grouped.groups_.push_back({key, {}});
    }
    auto& elements = grouped.groups_.back().elements;
    if (elements.empty() || elements.back() != element) elements.push_back(element);
  }
  pairs_.clear();
  return grouped;
}

GroupedRelation GroupedRelation::FromBinary(const core::Relation& relation,
                                            std::size_t key_column) {
  SETALG_CHECK_EQ(relation.arity(), 2u);
  SETALG_CHECK(key_column == 1 || key_column == 2);
  const std::size_t value_column = key_column == 1 ? 2 : 1;

  GroupedBuilder builder;
  builder.Reserve(relation.size());
  for (std::size_t i = 0; i < relation.size(); ++i) {
    core::TupleView t = relation.tuple(i);
    builder.Add(t[key_column - 1], t[value_column - 1]);
  }
  return std::move(builder).Build();
}

GroupedRelation GroupedRelation::FromGroups(std::vector<Group> groups) {
#ifndef NDEBUG
  for (std::size_t i = 0; i + 1 < groups.size(); ++i) {
    SETALG_DCHECK(groups[i].key < groups[i + 1].key);
  }
  for (const auto& g : groups) {
    SETALG_DCHECK(std::is_sorted(g.elements.begin(), g.elements.end()));
  }
#endif
  GroupedRelation grouped;
  grouped.groups_ = std::move(groups);
  return grouped;
}

GroupedRelation AsGrouped(const core::Relation& relation, std::size_t key_column) {
  return GroupedRelation::FromBinary(relation, key_column);
}

std::size_t PartitionOfKey(core::Value key, std::size_t partitions) {
  SETALG_DCHECK(partitions >= 1);
  return static_cast<std::size_t>(util::Mix64(static_cast<std::uint64_t>(key)) %
                                  partitions);
}

std::vector<GroupedRelation> PartitionByKey(GroupedRelation grouped,
                                            std::size_t partitions) {
  SETALG_CHECK(partitions >= 1);
  std::vector<std::vector<Group>> routed(partitions);
  for (auto& group : std::move(grouped).TakeGroups()) {
    routed[PartitionOfKey(group.key, partitions)].push_back(std::move(group));
  }
  std::vector<GroupedRelation> out;
  out.reserve(partitions);
  for (auto& groups : routed) {
    // Groups arrived in ascending key order, so each partition is ordered.
    out.push_back(GroupedRelation::FromGroups(std::move(groups)));
  }
  return out;
}

const Group* GroupedRelation::Find(core::Value key) const {
  auto it = std::lower_bound(
      groups_.begin(), groups_.end(), key,
      [](const Group& g, core::Value k) { return g.key < k; });
  if (it == groups_.end() || it->key != key) return nullptr;
  return &*it;
}

std::size_t GroupedRelation::TotalElements() const {
  std::size_t total = 0;
  for (const auto& g : groups_) total += g.elements.size();
  return total;
}

std::size_t GroupedRelation::MaxGroupSize() const {
  std::size_t max_size = 0;
  for (const auto& g : groups_) max_size = std::max(max_size, g.elements.size());
  return max_size;
}

bool SortedSubset(const std::vector<core::Value>& sub,
                  const std::vector<core::Value>& super) {
  return std::includes(super.begin(), super.end(), sub.begin(), sub.end());
}

bool SortedIntersects(const std::vector<core::Value>& a,
                      const std::vector<core::Value>& b) {
  std::size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      return true;
    }
  }
  return false;
}

std::uint64_t SetSignature(const std::vector<core::Value>& elements) {
  std::uint64_t signature = 0;
  for (core::Value e : elements) {
    signature |= 1ULL << (util::Mix64(static_cast<std::uint64_t>(e)) & 63);
  }
  return signature;
}

std::uint64_t SetHash(const std::vector<core::Value>& elements) {
  std::uint64_t h = util::Mix64(elements.size());
  for (core::Value e : elements) {
    h = util::HashCombineUnordered(h, static_cast<std::uint64_t>(e));
  }
  return h;
}

}  // namespace setalg::setjoin
