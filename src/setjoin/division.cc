#include "setjoin/division.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "core/database.h"
#include "core/index.h"
#include "setjoin/grouped.h"
#include "util/bitset.h"
#include "util/check.h"

namespace setalg::setjoin {
namespace {

using core::Relation;
using core::TupleView;
using core::Value;

std::vector<Value> DivisorElements(const Relation& s) {
  std::vector<Value> out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) out.push_back(s.tuple(i)[0]);
  return out;  // Already sorted and unique (set semantics).
}

// Nested-loop division: for every candidate a and every divisor element b,
// probe R for (a, b). Quadratic in the worst case.
Relation NestedLoopDivide(const Relation& r, const Relation& s, bool equality) {
  Relation out(1);
  const GroupedRelation groups = AsGrouped(r);
  const auto divisor = DivisorElements(s);
  core::HashIndex index(&r, {0, 1});
  core::Tuple probe(2);
  for (const Group& g : groups.groups()) {
    bool all = true;
    probe[0] = g.key;
    for (Value b : divisor) {
      probe[1] = b;
      if (!index.HasMatch(probe)) {
        all = false;
        break;
      }
    }
    if (!all) continue;
    // Equality additionally requires that the key relates to nothing
    // outside S: the group size must equal |S|.
    if (equality && g.elements.size() != divisor.size()) continue;
    out.Add({g.key});
  }
  return out;
}

// Sort-merge division: r is sorted by (A, B), so each group's B-list is a
// sorted run; merge it against the sorted divisor. Deliberately streams
// over the normalized relation (no grouping materialization) — this is
// the zero-allocation kernel of Graefe's taxonomy.
Relation SortMergeDivide(const Relation& r, const Relation& s, bool equality) {
  Relation out(1);
  const auto divisor = DivisorElements(s);
  std::size_t i = 0;
  const std::size_t n = r.size();
  while (i < n) {
    const Value a = r.tuple(i)[0];
    std::size_t matched = 0;
    std::size_t group_size = 0;
    std::size_t d = 0;
    while (i < n && r.tuple(i)[0] == a) {
      const Value b = r.tuple(i)[1];
      ++group_size;
      while (d < divisor.size() && divisor[d] < b) ++d;
      if (d < divisor.size() && divisor[d] == b) {
        ++matched;
        ++d;
      }
      ++i;
    }
    const bool contains = matched == divisor.size();
    const bool qualifies =
        equality ? contains && group_size == divisor.size() : contains;
    if (qualifies) out.Add({a});
  }
  return out;
}

// Graefe's hash-division: number the divisor 0..|S|-1 in a hash table; keep
// one bitmap per candidate; a candidate qualifies when its bitmap is full.
// Templated over the dividend row source (an indexed relation loop or the
// engine's batched probe stream) so both spellings share this kernel; the
// source must yield distinct (a, b) tuples — group_size counts them.
template <typename NextRowFn>
Relation HashDivideRows(NextRowFn&& next, const Relation& s, bool equality) {
  Relation out(1);
  const auto divisor = DivisorElements(s);
  std::unordered_map<Value, std::size_t> divisor_slots;
  divisor_slots.reserve(divisor.size() * 2);
  for (std::size_t k = 0; k < divisor.size(); ++k) divisor_slots[divisor[k]] = k;

  struct CandidateState {
    util::Bitset bitmap;
    std::size_t group_size = 0;
  };
  std::unordered_map<Value, CandidateState> states;
  TupleView t;
  while (next(&t)) {
    auto& state = states[t[0]];
    if (state.bitmap.empty() && !divisor.empty()) {
      state.bitmap = util::Bitset(divisor.size());
    }
    ++state.group_size;
    auto slot = divisor_slots.find(t[1]);
    if (slot != divisor_slots.end()) state.bitmap.Set(slot->second);
  }
  for (const auto& [a, state] : states) {
    const bool contains = divisor.empty() || state.bitmap.AllSet();
    const bool qualifies =
        equality ? contains && state.group_size == divisor.size() : contains;
    if (qualifies) out.Add({a});
  }
  return out;
}

// Aggregate (counting) division — the Section 5 strategy: count per
// candidate how many divisor elements it matches; compare against |S|.
// Row-source-templated like HashDivideRows.
template <typename NextRowFn>
Relation AggregateDivideRows(NextRowFn&& next, const Relation& s, bool equality) {
  Relation out(1);
  const auto divisor = DivisorElements(s);
  std::unordered_set<Value> divisor_set(divisor.begin(), divisor.end());
  std::unordered_map<Value, std::pair<std::size_t, std::size_t>> counts;
  TupleView t;
  while (next(&t)) {
    auto& [hits, total] = counts[t[0]];
    ++total;
    if (divisor_set.count(t[1]) > 0) ++hits;
  }
  for (const auto& [a, hit_total] : counts) {
    const bool contains = hit_total.first == divisor.size();
    const bool qualifies =
        equality ? contains && hit_total.second == divisor.size() : contains;
    if (qualifies) out.Add({a});
  }
  return out;
}

// Row source iterating a normalized relation front to back.
class RelationRowSource {
 public:
  explicit RelationRowSource(const Relation& r) : r_(&r) {}

  bool operator()(TupleView* t) {
    if (i_ >= r_->size()) return false;
    *t = r_->tuple(i_++);
    return true;
  }

 private:
  const Relation* r_;
  std::size_t i_ = 0;
};

Relation HashDivide(const Relation& r, const Relation& s, bool equality) {
  return HashDivideRows(RelationRowSource(r), s, equality);
}

Relation AggregateDivide(const Relation& r, const Relation& s, bool equality) {
  return AggregateDivideRows(RelationRowSource(r), s, equality);
}

// Evaluates the classic RA expression on a transient two-relation database.
Relation ClassicRaDivide(const Relation& r, const Relation& s, bool equality,
                         ra::EvalStats* stats) {
  core::Schema schema;
  schema.AddRelation("R", 2);
  schema.AddRelation("S", 1);
  core::Database db(schema);
  db.SetRelation("R", r);
  db.SetRelation("S", s);
  const ra::ExprPtr expr = equality ? ClassicEqualityDivisionExpr("R", "S")
                                    : ClassicDivisionExpr("R", "S");
  return ra::Eval(expr, db, stats);
}

}  // namespace

const char* DivisionAlgorithmToString(DivisionAlgorithm algorithm) {
  switch (algorithm) {
    case DivisionAlgorithm::kNestedLoop:
      return "nested-loop";
    case DivisionAlgorithm::kSortMerge:
      return "sort-merge";
    case DivisionAlgorithm::kHashDivision:
      return "hash-division";
    case DivisionAlgorithm::kAggregate:
      return "aggregate";
    case DivisionAlgorithm::kClassicRa:
      return "classic-ra";
  }
  return "?";
}

std::vector<DivisionAlgorithm> AllDivisionAlgorithms() {
  return {DivisionAlgorithm::kNestedLoop, DivisionAlgorithm::kSortMerge,
          DivisionAlgorithm::kHashDivision, DivisionAlgorithm::kAggregate,
          DivisionAlgorithm::kClassicRa};
}

namespace {

Relation Dispatch(const Relation& r, const Relation& s, DivisionAlgorithm algorithm,
                  bool equality, ra::EvalStats* stats) {
  SETALG_CHECK_EQ(r.arity(), 2u);
  SETALG_CHECK_EQ(s.arity(), 1u);
  switch (algorithm) {
    case DivisionAlgorithm::kNestedLoop:
      return NestedLoopDivide(r, s, equality);
    case DivisionAlgorithm::kSortMerge:
      return SortMergeDivide(r, s, equality);
    case DivisionAlgorithm::kHashDivision:
      return HashDivide(r, s, equality);
    case DivisionAlgorithm::kAggregate:
      return AggregateDivide(r, s, equality);
    case DivisionAlgorithm::kClassicRa:
      return ClassicRaDivide(r, s, equality, stats);
  }
  SETALG_CHECK_STREAM(false) << "unreachable";
  return Relation(1);
}

}  // namespace

core::Relation Divide(const core::Relation& r, const core::Relation& s,
                      DivisionAlgorithm algorithm, ra::EvalStats* stats) {
  return Dispatch(r, s, algorithm, /*equality=*/false, stats);
}

core::Relation DivideEqual(const core::Relation& r, const core::Relation& s,
                           DivisionAlgorithm algorithm, ra::EvalStats* stats) {
  return Dispatch(r, s, algorithm, /*equality=*/true, stats);
}

core::Relation DivideStream(const std::function<bool(core::TupleView*)>& next,
                            const core::Relation& s, DivisionAlgorithm algorithm,
                            bool equality) {
  SETALG_CHECK_EQ(s.arity(), 1u);
  switch (algorithm) {
    case DivisionAlgorithm::kHashDivision:
      return HashDivideRows(next, s, equality);
    case DivisionAlgorithm::kAggregate:
      return AggregateDivideRows(next, s, equality);
    default:
      SETALG_CHECK_STREAM(false)
          << "DivideStream supports only the single-pass algorithms, got "
          << DivisionAlgorithmToString(algorithm);
  }
  return Relation(1);
}

ra::ExprPtr ClassicDivisionExpr(const std::string& r_name, const std::string& s_name) {
  ra::ExprPtr r = ra::Rel(r_name, 2);
  ra::ExprPtr s = ra::Rel(s_name, 1);
  ra::ExprPtr candidates = ra::Project(r, {1});
  // π_A(R) − π_A((π_A(R) × S) − R): the product enumerates every required
  // (a, b) pair; the subtraction finds the missing ones.
  ra::ExprPtr required = ra::Product(candidates, s);
  ra::ExprPtr missing = ra::Diff(required, r);
  return ra::Diff(candidates, ra::Project(missing, {1}));
}

ra::ExprPtr ClassicEqualityDivisionExpr(const std::string& r_name,
                                        const std::string& s_name) {
  ra::ExprPtr r = ra::Rel(r_name, 2);
  ra::ExprPtr s = ra::Rel(s_name, 1);
  ra::ExprPtr containment = ClassicDivisionExpr(r_name, s_name);
  // A's related to some b outside S: π_A(R − π_{1,2}(R ⋈_{2=1} S)).
  ra::ExprPtr inside = ra::Project(ra::Join(r, s, {{2, ra::Cmp::kEq, 1}}), {1, 2});
  ra::ExprPtr outside = ra::Project(ra::Diff(r, inside), {1});
  return ra::Diff(containment, outside);
}

}  // namespace setalg::setjoin
