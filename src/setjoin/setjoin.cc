#include "setjoin/setjoin.h"

#include <algorithm>
#include <unordered_map>

#include "util/check.h"
#include "util/hash.h"

namespace setalg::setjoin {
namespace {

using core::Relation;
using core::Value;

Relation NestedLoopContainment(const GroupedRelation& r, const GroupedRelation& s,
                               bool use_signatures) {
  Relation out(2);
  std::vector<std::uint64_t> r_signatures, s_signatures;
  if (use_signatures) {
    r_signatures.reserve(r.NumGroups());
    for (const auto& g : r.groups()) r_signatures.push_back(SetSignature(g.elements));
    s_signatures.reserve(s.NumGroups());
    for (const auto& g : s.groups()) s_signatures.push_back(SetSignature(g.elements));
  }
  for (std::size_t i = 0; i < r.NumGroups(); ++i) {
    const Group& rg = r.group(i);
    for (std::size_t j = 0; j < s.NumGroups(); ++j) {
      const Group& sg = s.group(j);
      if (sg.elements.size() > rg.elements.size()) continue;
      if (use_signatures && (s_signatures[j] & ~r_signatures[i]) != 0) continue;
      if (SortedSubset(sg.elements, rg.elements)) out.Add({rg.key, sg.key});
    }
  }
  return out;
}

Relation PartitionedContainment(const GroupedRelation& r, const GroupedRelation& s) {
  Relation out(2);
  // Pick the partition count from the candidate-side size.
  const std::size_t partitions =
      std::max<std::size_t>(1, std::min<std::size_t>(64, r.NumGroups() / 8 + 1));
  auto partition_of = [&](Value e) {
    return static_cast<std::size_t>(util::Mix64(static_cast<std::uint64_t>(e)) %
                                    partitions);
  };
  // Candidate (containing) groups are replicated to the partition of each
  // of their elements; a contained group only needs to visit the partition
  // of one designated element (its minimum), since that element must occur
  // in any containing set.
  std::vector<std::vector<std::size_t>> r_parts(partitions), s_parts(partitions);
  for (std::size_t i = 0; i < r.NumGroups(); ++i) {
    std::vector<bool> seen(partitions, false);
    for (Value e : r.group(i).elements) {
      const std::size_t p = partition_of(e);
      if (!seen[p]) {
        seen[p] = true;
        r_parts[p].push_back(i);
      }
    }
  }
  for (std::size_t j = 0; j < s.NumGroups(); ++j) {
    const Group& sg = s.group(j);
    if (sg.elements.empty()) {
      // Empty sets are contained in every candidate set.
      for (std::size_t i = 0; i < r.NumGroups(); ++i) {
        out.Add({r.group(i).key, sg.key});
      }
      continue;
    }
    s_parts[partition_of(sg.elements.front())].push_back(j);
  }
  for (std::size_t p = 0; p < partitions; ++p) {
    for (std::size_t i : r_parts[p]) {
      const Group& rg = r.group(i);
      const std::uint64_t r_sig = SetSignature(rg.elements);
      for (std::size_t j : s_parts[p]) {
        const Group& sg = s.group(j);
        if (sg.elements.size() > rg.elements.size()) continue;
        if ((SetSignature(sg.elements) & ~r_sig) != 0) continue;
        if (SortedSubset(sg.elements, rg.elements)) out.Add({rg.key, sg.key});
      }
    }
  }
  return out;
}

Relation InvertedIndexContainment(const GroupedRelation& r, const GroupedRelation& s) {
  Relation out(2);
  // Postings: element -> candidate group indices containing it.
  std::unordered_map<Value, std::vector<std::uint32_t>> postings;
  for (std::size_t i = 0; i < r.NumGroups(); ++i) {
    for (Value e : r.group(i).elements) {
      postings[e].push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<std::uint32_t> hit_count(r.NumGroups(), 0);
  std::vector<std::uint32_t> touched;
  for (std::size_t j = 0; j < s.NumGroups(); ++j) {
    const Group& sg = s.group(j);
    if (sg.elements.empty()) {
      for (std::size_t i = 0; i < r.NumGroups(); ++i) {
        out.Add({r.group(i).key, sg.key});
      }
      continue;
    }
    touched.clear();
    for (Value e : sg.elements) {
      auto it = postings.find(e);
      if (it == postings.end()) continue;
      for (std::uint32_t i : it->second) {
        if (hit_count[i] == 0) touched.push_back(i);
        ++hit_count[i];
      }
    }
    for (std::uint32_t i : touched) {
      if (hit_count[i] == sg.elements.size()) {
        out.Add({r.group(i).key, sg.key});
      }
      hit_count[i] = 0;
    }
  }
  return out;
}

}  // namespace

const char* ContainmentAlgorithmToString(ContainmentAlgorithm algorithm) {
  switch (algorithm) {
    case ContainmentAlgorithm::kNestedLoop:
      return "nested-loop";
    case ContainmentAlgorithm::kSignatureNestedLoop:
      return "signature-nested-loop";
    case ContainmentAlgorithm::kPartitioned:
      return "partitioned";
    case ContainmentAlgorithm::kInvertedIndex:
      return "inverted-index";
  }
  return "?";
}

std::vector<ContainmentAlgorithm> AllContainmentAlgorithms() {
  return {ContainmentAlgorithm::kNestedLoop, ContainmentAlgorithm::kSignatureNestedLoop,
          ContainmentAlgorithm::kPartitioned, ContainmentAlgorithm::kInvertedIndex};
}

core::Relation SetContainmentJoin(const GroupedRelation& r, const GroupedRelation& s,
                                  ContainmentAlgorithm algorithm) {
  switch (algorithm) {
    case ContainmentAlgorithm::kNestedLoop:
      return NestedLoopContainment(r, s, /*use_signatures=*/false);
    case ContainmentAlgorithm::kSignatureNestedLoop:
      return NestedLoopContainment(r, s, /*use_signatures=*/true);
    case ContainmentAlgorithm::kPartitioned:
      return PartitionedContainment(r, s);
    case ContainmentAlgorithm::kInvertedIndex:
      return InvertedIndexContainment(r, s);
  }
  SETALG_CHECK_STREAM(false) << "unreachable";
  return core::Relation(2);
}

core::Relation SetContainmentJoin(const core::Relation& r, const core::Relation& s,
                                  ContainmentAlgorithm algorithm) {
  return SetContainmentJoin(AsGrouped(r), AsGrouped(s), algorithm);
}

const char* EqualityJoinAlgorithmToString(EqualityJoinAlgorithm algorithm) {
  switch (algorithm) {
    case EqualityJoinAlgorithm::kNestedLoop:
      return "nested-loop";
    case EqualityJoinAlgorithm::kCanonicalHash:
      return "canonical-hash";
  }
  return "?";
}

core::Relation SetEqualityJoin(const GroupedRelation& r, const GroupedRelation& s,
                               EqualityJoinAlgorithm algorithm) {
  Relation out(2);
  if (algorithm == EqualityJoinAlgorithm::kNestedLoop) {
    for (const auto& rg : r.groups()) {
      for (const auto& sg : s.groups()) {
        if (rg.elements == sg.elements) out.Add({rg.key, sg.key});
      }
    }
    return out;
  }
  // Canonical hash: bucket the contained side by exact set hash, probe
  // with each candidate set, verify within the bucket.
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> buckets;
  for (std::size_t j = 0; j < s.NumGroups(); ++j) {
    buckets[SetHash(s.group(j).elements)].push_back(static_cast<std::uint32_t>(j));
  }
  for (const auto& rg : r.groups()) {
    auto it = buckets.find(SetHash(rg.elements));
    if (it == buckets.end()) continue;
    for (std::uint32_t j : it->second) {
      const Group& sg = s.group(j);
      if (rg.elements == sg.elements) out.Add({rg.key, sg.key});
    }
  }
  return out;
}

core::Relation SetEqualityJoin(const core::Relation& r, const core::Relation& s,
                               EqualityJoinAlgorithm algorithm) {
  return SetEqualityJoin(AsGrouped(r), AsGrouped(s), algorithm);
}

core::Relation SetOverlapJoin(const GroupedRelation& r, const GroupedRelation& s) {
  Relation out(2);
  std::unordered_map<Value, std::vector<std::uint32_t>> postings;
  for (std::size_t i = 0; i < r.NumGroups(); ++i) {
    for (Value e : r.group(i).elements) {
      postings[e].push_back(static_cast<std::uint32_t>(i));
    }
  }
  std::vector<bool> seen(r.NumGroups(), false);
  std::vector<std::uint32_t> touched;
  for (const auto& sg : s.groups()) {
    touched.clear();
    for (Value e : sg.elements) {
      auto it = postings.find(e);
      if (it == postings.end()) continue;
      for (std::uint32_t i : it->second) {
        if (!seen[i]) {
          seen[i] = true;
          touched.push_back(i);
          out.Add({r.group(i).key, sg.key});
        }
      }
    }
    for (std::uint32_t i : touched) seen[i] = false;
  }
  return out;
}

core::Relation SetOverlapJoin(const core::Relation& r, const core::Relation& s) {
  return SetOverlapJoin(AsGrouped(r), AsGrouped(s));
}

}  // namespace setalg::setjoin
