// Set joins between R(A,B) and S(C,D), relating keys by a predicate on
// their element sets (the paper's Section 1):
//   containment: R B⊇D S = { (a,c) | {b|R(a,b)} ⊇ {d|S(c,d)} }
//   equality:    sets equal
//   overlap:     sets intersect — which, as the paper notes, "boils down
//                to an ordinary equijoin".
//
// Containment-join algorithms (no sub-quadratic algorithm is known — the
// paper, end of Section 1):
//   - nested loop over group pairs with sorted-subset tests;
//   - signature nested loop (Helmer–Moerkotte [13]): 64-bit Bloom
//     signatures prune pairs before the exact test;
//   - partitioned set join (after Ramasamy et al. [16]): divisor groups are
//     routed to the partition of one designated element, candidate groups
//     are replicated to the partitions of all their elements;
//   - inverted-index counting (after Mamoulis [15]): postings of the
//     candidate side are intersected by counting hits per candidate.
// Set-equality join uses canonical set hashing: O(n log n) plus output
// size (the paper's footnote 1).
#ifndef SETALG_SETJOIN_SETJOIN_H_
#define SETALG_SETJOIN_SETJOIN_H_

#include <vector>

#include "core/relation.h"
#include "setjoin/grouped.h"

namespace setalg::setjoin {

enum class ContainmentAlgorithm {
  kNestedLoop,
  kSignatureNestedLoop,
  kPartitioned,
  kInvertedIndex,
};

const char* ContainmentAlgorithmToString(ContainmentAlgorithm algorithm);
std::vector<ContainmentAlgorithm> AllContainmentAlgorithms();

/// Set-containment join on pre-grouped inputs: pairs (a, c) with
/// set(a) ⊇ set(c). `r` is the containing side (A groups), `s` the
/// contained side (C groups).
core::Relation SetContainmentJoin(const GroupedRelation& r, const GroupedRelation& s,
                                  ContainmentAlgorithm algorithm);

/// Convenience overload on binary relations (grouped on column 1).
core::Relation SetContainmentJoin(const core::Relation& r, const core::Relation& s,
                                  ContainmentAlgorithm algorithm);

enum class EqualityJoinAlgorithm {
  kNestedLoop,       // Quadratic baseline.
  kCanonicalHash,    // Sort each set once, hash, verify within buckets.
};

const char* EqualityJoinAlgorithmToString(EqualityJoinAlgorithm algorithm);

/// Set-equality join: pairs (a, c) with set(a) = set(c).
core::Relation SetEqualityJoin(const GroupedRelation& r, const GroupedRelation& s,
                               EqualityJoinAlgorithm algorithm);
core::Relation SetEqualityJoin(const core::Relation& r, const core::Relation& s,
                               EqualityJoinAlgorithm algorithm);

/// Set-overlap join: pairs (a, c) whose sets intersect. Implemented as the
/// equijoin π_{A,C}(R ⋈_{B=D} S) (deduplicated), via an inverted index.
core::Relation SetOverlapJoin(const GroupedRelation& r, const GroupedRelation& s);
core::Relation SetOverlapJoin(const core::Relation& r, const core::Relation& s);

}  // namespace setalg::setjoin

#endif  // SETALG_SETJOIN_SETJOIN_H_
