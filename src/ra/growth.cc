#include "ra/growth.h"

#include <cmath>

#include "ra/eval.h"
#include "util/check.h"

namespace setalg::ra {

const char* GrowthClassToString(GrowthClass c) {
  switch (c) {
    case GrowthClass::kLinear:
      return "linear";
    case GrowthClass::kQuadratic:
      return "quadratic";
    case GrowthClass::kUnclear:
      return "unclear";
  }
  return "?";
}

GrowthReport MeasureGrowth(const ExprPtr& expr, const DatabaseFamily& family,
                           const std::vector<std::size_t>& ns,
                           const GrowthThresholds& thresholds) {
  SETALG_CHECK_GE(ns.size(), 2u);
  GrowthReport report;
  std::vector<std::size_t> xs, ys;
  for (std::size_t n : ns) {
    const core::Database db = family(n);
    EvalStats stats;
    const core::Relation out = Eval(expr, db, &stats);
    GrowthSample sample;
    sample.n = n;
    sample.db_size = db.size();
    sample.max_intermediate = stats.max_intermediate;
    sample.output_size = out.size();
    report.samples.push_back(sample);
    xs.push_back(sample.db_size == 0 ? 1 : sample.db_size);
    ys.push_back(sample.max_intermediate);
  }
  report.fit = util::FitGrowthExponent(xs, ys);
  if (report.fit.slope <= thresholds.linear_below) {
    report.classification = GrowthClass::kLinear;
  } else if (report.fit.slope >= thresholds.quadratic_above) {
    report.classification = GrowthClass::kQuadratic;
  } else {
    report.classification = GrowthClass::kUnclear;
  }
  return report;
}

std::vector<std::size_t> GeometricSizes(std::size_t lo, std::size_t hi, std::size_t k) {
  SETALG_CHECK(lo > 0 && hi >= lo && k >= 2);
  std::vector<std::size_t> sizes;
  const double ratio = std::pow(static_cast<double>(hi) / static_cast<double>(lo),
                                1.0 / static_cast<double>(k - 1));
  double current = static_cast<double>(lo);
  for (std::size_t i = 0; i < k; ++i) {
    const auto size = static_cast<std::size_t>(std::llround(current));
    if (sizes.empty() || size > sizes.back()) sizes.push_back(size);
    current *= ratio;
  }
  if (sizes.back() != hi) sizes.push_back(hi);
  return sizes;
}

}  // namespace setalg::ra
