// Expression rewrites connecting RA and SA=:
//
//   - SemiJoinToJoin: the embedding of semijoins into RA. For equality
//     semijoins it uses the linear form from the paper (Section 3):
//     R ⋉_{2=1} S = π_{1,2}(R ⋈_{2=1} π₁(S)).
//   - RewriteRaToSaEq: the constructive translation behind Theorem 18.
//     Given an RA expression whose joins can be *syntactically* certified
//     linear (one side of every join has no unconstrained, non-constant
//     positions — the discharge of the Lemma 24 side condition), produces
//     an equivalent SA= expression. Returns nullopt when certification
//     fails; the general decision problem is undecidable, so failure does
//     not prove the expression quadratic (use growth measurement for the
//     empirical answer).
#ifndef SETALG_RA_REWRITE_H_
#define SETALG_RA_REWRITE_H_

#include <optional>

#include "ra/expr.h"

namespace setalg::ra {

/// Recursively replaces every semijoin node by an equivalent join-based RA
/// subexpression. The result is in RA.
ExprPtr SemiJoinToJoin(const ExprPtr& e);

/// Theorem 18 rewriter: attempts to produce an SA= expression equivalent
/// to the given RA expression. `e` must be in RA.
std::optional<ExprPtr> RewriteRaToSaEq(const ExprPtr& e);

}  // namespace setalg::ra

#endif  // SETALG_RA_REWRITE_H_
