#include "ra/parse.h"

#include <cctype>
#include <optional>

#include "util/str.h"

namespace setalg::ra {
namespace {

class Parser {
 public:
  Parser(const std::string& text, const core::Schema& schema)
      : text_(text), schema_(schema) {}

  util::Result<ExprPtr> Run() {
    auto expr = ParseExpr();
    if (!ok_) return util::Result<ExprPtr>::Error(error_);
    SkipSpace();
    if (pos_ != text_.size()) {
      return Fail<ExprPtr>("trailing input after expression");
    }
    return expr;
  }

 private:
  template <typename T>
  util::Result<T> Fail(const std::string& message) {
    if (ok_) {
      ok_ = false;
      error_ = util::StrCat("parse error at offset ", pos_, ": ", message);
    }
    return util::Result<T>::Error(error_);
  }

  void SkipSpace() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool Consume(char c) {
    if (Peek(c)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Expect(char c) {
    if (Consume(c)) return true;
    Fail<int>(util::StrCat("expected '", std::string(1, c), "'"));
    return false;
  }

  std::string ParseIdent() {
    SkipSpace();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_')) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  std::optional<long long> ParseInt(bool allow_sign) {
    SkipSpace();
    std::size_t start = pos_;
    if (allow_sign && pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() && std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    long long value = 0;
    if (pos_ == start || !util::ParseInt64(text_.substr(start, pos_ - start), &value)) {
      Fail<int>("expected integer");
      return std::nullopt;
    }
    return value;
  }

  std::optional<Cmp> ParseCmp() {
    SkipSpace();
    if (Consume('=')) return Cmp::kEq;
    if (Consume('<')) return Cmp::kLt;
    if (Consume('>')) return Cmp::kGt;
    if (pos_ + 1 < text_.size() && text_[pos_] == '!' && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return Cmp::kNeq;
    }
    Fail<int>("expected comparison operator (=, !=, <, >)");
    return std::nullopt;
  }

  std::vector<JoinAtom> ParseAtoms() {
    std::vector<JoinAtom> atoms;
    if (!Expect('[')) return atoms;
    if (Consume(']')) return atoms;  // Empty θ (cartesian product).
    for (;;) {
      auto left = ParseInt(false);
      auto op = ParseCmp();
      auto right = ParseInt(false);
      if (!ok_) return atoms;
      atoms.push_back({static_cast<std::size_t>(*left), *op,
                       static_cast<std::size_t>(*right)});
      if (Consume(';')) continue;
      Expect(']');
      return atoms;
    }
  }

  util::Result<ExprPtr> ParseBinary(
      ExprPtr (*make)(ExprPtr, ExprPtr, std::vector<JoinAtom>),
      std::vector<JoinAtom> atoms) {
    if (!Expect('(')) return Fail<ExprPtr>("expected '('");
    auto left = ParseExpr();
    if (!ok_) return left;
    if (!Expect(',')) return Fail<ExprPtr>("expected ','");
    auto right = ParseExpr();
    if (!ok_) return right;
    if (!Expect(')')) return Fail<ExprPtr>("expected ')'");
    // Defer arity/column validation errors to CHECKs only after validating
    // here, so malformed text yields a parse error instead of an abort.
    const std::size_t n = left.value()->arity();
    const std::size_t m = right.value()->arity();
    for (const auto& atom : atoms) {
      if (atom.left < 1 || atom.left > n || atom.right < 1 || atom.right > m) {
        return Fail<ExprPtr>(util::StrCat("join atom column out of range: ", atom.left,
                                          CmpToString(atom.op), atom.right));
      }
    }
    return make(std::move(left).value(), std::move(right).value(), std::move(atoms));
  }

  util::Result<ExprPtr> ParseExpr() {
    SkipSpace();
    if (Consume('(')) {
      auto inner = ParseExpr();
      if (!ok_) return inner;
      if (!Expect(')')) return Fail<ExprPtr>("expected ')'");
      return inner;
    }
    const std::string ident = ParseIdent();
    if (ident.empty()) return Fail<ExprPtr>("expected expression");

    if (ident == "union" || ident == "diff" || ident == "product") {
      if (!Expect('(')) return Fail<ExprPtr>("expected '('");
      auto left = ParseExpr();
      if (!ok_) return left;
      if (!Expect(',')) return Fail<ExprPtr>("expected ','");
      auto right = ParseExpr();
      if (!ok_) return right;
      if (!Expect(')')) return Fail<ExprPtr>("expected ')'");
      if (ident == "product") {
        return Product(std::move(left).value(), std::move(right).value());
      }
      if (left.value()->arity() != right.value()->arity()) {
        return Fail<ExprPtr>(util::StrCat(ident, " arity mismatch: ",
                                          left.value()->arity(), " vs ",
                                          right.value()->arity()));
      }
      return ident == "union" ? Union(std::move(left).value(), std::move(right).value())
                              : Diff(std::move(left).value(), std::move(right).value());
    }
    if (ident == "join" || ident == "semijoin") {
      auto atoms = ParseAtoms();
      if (!ok_) return util::Result<ExprPtr>::Error(error_);
      return ParseBinary(ident == "join" ? &Join : &SemiJoin, std::move(atoms));
    }
    if (ident == "pi") {
      if (!Expect('[')) return Fail<ExprPtr>("expected '['");
      std::vector<std::size_t> columns;
      if (!Consume(']')) {
        for (;;) {
          auto col = ParseInt(false);
          if (!ok_) return util::Result<ExprPtr>::Error(error_);
          columns.push_back(static_cast<std::size_t>(*col));
          if (Consume(',')) continue;
          if (!Expect(']')) return Fail<ExprPtr>("expected ']'");
          break;
        }
      }
      if (!Expect('(')) return Fail<ExprPtr>("expected '('");
      auto input = ParseExpr();
      if (!ok_) return input;
      if (!Expect(')')) return Fail<ExprPtr>("expected ')'");
      for (std::size_t c : columns) {
        if (c < 1 || c > input.value()->arity()) {
          return Fail<ExprPtr>(util::StrCat("projection column out of range: ", c));
        }
      }
      return Project(std::move(input).value(), std::move(columns));
    }
    if (ident == "sigma") {
      if (!Expect('[')) return Fail<ExprPtr>("expected '['");
      auto i = ParseInt(false);
      auto op = ParseCmp();
      if (!ok_) return util::Result<ExprPtr>::Error(error_);
      if (*op != Cmp::kEq && *op != Cmp::kLt) {
        return Fail<ExprPtr>("selection supports only '=' and '<'");
      }
      bool constant_rhs = Consume('#');
      auto j = ParseInt(constant_rhs);
      if (!ok_) return util::Result<ExprPtr>::Error(error_);
      if (!Expect(']')) return Fail<ExprPtr>("expected ']'");
      if (!Expect('(')) return Fail<ExprPtr>("expected '('");
      auto input = ParseExpr();
      if (!ok_) return input;
      if (!Expect(')')) return Fail<ExprPtr>("expected ')'");
      const std::size_t arity = input.value()->arity();
      if (*i < 1 || static_cast<std::size_t>(*i) > arity) {
        return Fail<ExprPtr>(util::StrCat("selection column out of range: ", *i));
      }
      if (constant_rhs) {
        if (*op != Cmp::kEq) {
          return Fail<ExprPtr>("constant selection supports only '='");
        }
        return SelectConst(std::move(input).value(), static_cast<std::size_t>(*i),
                           static_cast<core::Value>(*j));
      }
      if (*j < 1 || static_cast<std::size_t>(*j) > arity) {
        return Fail<ExprPtr>(util::StrCat("selection column out of range: ", *j));
      }
      return *op == Cmp::kEq
                 ? SelectEq(std::move(input).value(), static_cast<std::size_t>(*i),
                            static_cast<std::size_t>(*j))
                 : SelectLt(std::move(input).value(), static_cast<std::size_t>(*i),
                            static_cast<std::size_t>(*j));
    }
    if (ident == "tag") {
      if (!Expect('[')) return Fail<ExprPtr>("expected '['");
      auto value = ParseInt(true);
      if (!ok_) return util::Result<ExprPtr>::Error(error_);
      if (!Expect(']')) return Fail<ExprPtr>("expected ']'");
      if (!Expect('(')) return Fail<ExprPtr>("expected '('");
      auto input = ParseExpr();
      if (!ok_) return input;
      if (!Expect(')')) return Fail<ExprPtr>("expected ')'");
      return Tag(std::move(input).value(), static_cast<core::Value>(*value));
    }

    // Plain relation reference.
    if (!schema_.HasRelation(ident)) {
      return Fail<ExprPtr>(util::StrCat("unknown relation: ", ident));
    }
    return Rel(ident, schema_.Arity(ident));
  }

  const std::string& text_;
  const core::Schema& schema_;
  std::size_t pos_ = 0;
  bool ok_ = true;
  std::string error_;
};

}  // namespace

util::Result<ExprPtr> Parse(const std::string& text, const core::Schema& schema) {
  Parser parser(text, schema);
  return parser.Run();
}

}  // namespace setalg::ra
