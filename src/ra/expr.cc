#include "ra/expr.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"
#include "util/hash.h"
#include "util/str.h"

namespace setalg::ra {
namespace {

struct ExprDeleter {
  void operator()(Expr* e) const { delete e; }
};

}  // namespace

class ExprFactory {
 public:
  static ExprPtr Make(OpKind kind, std::size_t arity, std::vector<ExprPtr> children) {
    auto* e = new Expr();
    e->kind_ = kind;
    e->arity_ = arity;
    e->children_ = std::move(children);
    return ExprPtr(e);
  }
  static void SetRelationName(const ExprPtr& p, std::string name) {
    Mutable(p)->relation_name_ = std::move(name);
  }
  static void SetProjection(const ExprPtr& p, std::vector<std::size_t> columns) {
    Mutable(p)->projection_ = std::move(columns);
  }
  static void SetSelection(const ExprPtr& p, Cmp op, std::size_t i, std::size_t j) {
    Expr* e = Mutable(p);
    e->selection_op_ = op;
    e->selection_i_ = i;
    e->selection_j_ = j;
  }
  static void SetTagValue(const ExprPtr& p, core::Value c) {
    Mutable(p)->tag_value_ = c;
  }
  static void SetAtoms(const ExprPtr& p, std::vector<JoinAtom> atoms) {
    Mutable(p)->atoms_ = std::move(atoms);
  }

 private:
  static Expr* Mutable(const ExprPtr& p) { return const_cast<Expr*>(p.get()); }
};

const char* CmpToString(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq:
      return "=";
    case Cmp::kNeq:
      return "!=";
    case Cmp::kLt:
      return "<";
    case Cmp::kGt:
      return ">";
  }
  return "?";
}

Cmp MirrorCmp(Cmp cmp) {
  switch (cmp) {
    case Cmp::kEq:
      return Cmp::kEq;
    case Cmp::kNeq:
      return Cmp::kNeq;
    case Cmp::kLt:
      return Cmp::kGt;
    case Cmp::kGt:
      return Cmp::kLt;
  }
  return cmp;
}

namespace {

void CheckColumn(std::size_t column, std::size_t arity, const char* what) {
  SETALG_CHECK_STREAM(column >= 1 && column <= arity)
      << what << " column " << column << " out of range 1.." << arity;
}

void CheckAtoms(const std::vector<JoinAtom>& atoms, std::size_t left_arity,
                std::size_t right_arity) {
  for (const auto& atom : atoms) {
    CheckColumn(atom.left, left_arity, "join-left");
    CheckColumn(atom.right, right_arity, "join-right");
  }
}

}  // namespace

ExprPtr Rel(const std::string& name, std::size_t arity) {
  SETALG_CHECK(!name.empty());
  auto e = ExprFactory::Make(OpKind::kRelation, arity, {});
  ExprFactory::SetRelationName(e, name);
  return e;
}

ExprPtr Union(ExprPtr left, ExprPtr right) {
  SETALG_CHECK_EQ(left->arity(), right->arity());
  const std::size_t arity = left->arity();
  return ExprFactory::Make(OpKind::kUnion, arity,
                           {std::move(left), std::move(right)});
}

ExprPtr Diff(ExprPtr left, ExprPtr right) {
  SETALG_CHECK_EQ(left->arity(), right->arity());
  const std::size_t arity = left->arity();
  return ExprFactory::Make(OpKind::kDifference, arity,
                           {std::move(left), std::move(right)});
}

ExprPtr Project(ExprPtr input, std::vector<std::size_t> columns) {
  for (std::size_t c : columns) CheckColumn(c, input->arity(), "projection");
  auto e = ExprFactory::Make(OpKind::kProjection, columns.size(), {std::move(input)});
  ExprFactory::SetProjection(e, std::move(columns));
  return e;
}

namespace {

ExprPtr MakeSelection(ExprPtr input, Cmp op, std::size_t i, std::size_t j) {
  CheckColumn(i, input->arity(), "selection");
  CheckColumn(j, input->arity(), "selection");
  const std::size_t arity = input->arity();
  auto e = ExprFactory::Make(OpKind::kSelection, arity, {std::move(input)});
  ExprFactory::SetSelection(e, op, i, j);
  return e;
}

}  // namespace

ExprPtr SelectEq(ExprPtr input, std::size_t i, std::size_t j) {
  return MakeSelection(std::move(input), Cmp::kEq, i, j);
}

ExprPtr SelectLt(ExprPtr input, std::size_t i, std::size_t j) {
  return MakeSelection(std::move(input), Cmp::kLt, i, j);
}

ExprPtr Tag(ExprPtr input, core::Value c) {
  const std::size_t arity = input->arity() + 1;
  auto e = ExprFactory::Make(OpKind::kConstTag, arity, {std::move(input)});
  ExprFactory::SetTagValue(e, c);
  return e;
}

ExprPtr Join(ExprPtr left, ExprPtr right, std::vector<JoinAtom> atoms) {
  CheckAtoms(atoms, left->arity(), right->arity());
  const std::size_t arity = left->arity() + right->arity();
  auto e = ExprFactory::Make(OpKind::kJoin, arity, {std::move(left), std::move(right)});
  ExprFactory::SetAtoms(e, std::move(atoms));
  return e;
}

ExprPtr SemiJoin(ExprPtr left, ExprPtr right, std::vector<JoinAtom> atoms) {
  CheckAtoms(atoms, left->arity(), right->arity());
  const std::size_t arity = left->arity();
  auto e = ExprFactory::Make(OpKind::kSemiJoin, arity,
                             {std::move(left), std::move(right)});
  ExprFactory::SetAtoms(e, std::move(atoms));
  return e;
}

ExprPtr Product(ExprPtr left, ExprPtr right) {
  return Join(std::move(left), std::move(right), {});
}

ExprPtr SelectConst(ExprPtr input, std::size_t i, core::Value c) {
  const std::size_t n = input->arity();
  CheckColumn(i, n, "selection");
  std::vector<std::size_t> keep(n);
  for (std::size_t k = 0; k < n; ++k) keep[k] = k + 1;
  return Project(SelectEq(Tag(std::move(input), c), i, n + 1), std::move(keep));
}

ExprPtr EquiJoin(ExprPtr left, ExprPtr right,
                 std::vector<std::pair<std::size_t, std::size_t>> pairs) {
  std::vector<JoinAtom> atoms;
  atoms.reserve(pairs.size());
  for (const auto& [i, j] : pairs) atoms.push_back({i, Cmp::kEq, j});
  return Join(std::move(left), std::move(right), std::move(atoms));
}

ExprPtr EquiSemiJoin(ExprPtr left, ExprPtr right,
                     std::vector<std::pair<std::size_t, std::size_t>> pairs) {
  std::vector<JoinAtom> atoms;
  atoms.reserve(pairs.size());
  for (const auto& [i, j] : pairs) atoms.push_back({i, Cmp::kEq, j});
  return SemiJoin(std::move(left), std::move(right), std::move(atoms));
}

std::size_t Expr::NumNodes() const {
  std::size_t count = 1;
  for (const auto& child : children_) count += child->NumNodes();
  return count;
}

std::string Expr::ToString() const {
  switch (kind_) {
    case OpKind::kRelation:
      return relation_name_;
    case OpKind::kUnion:
      return util::StrCat("union(", children_[0]->ToString(), ", ",
                          children_[1]->ToString(), ")");
    case OpKind::kDifference:
      return util::StrCat("diff(", children_[0]->ToString(), ", ",
                          children_[1]->ToString(), ")");
    case OpKind::kProjection: {
      std::vector<std::string> cols;
      cols.reserve(projection_.size());
      for (std::size_t c : projection_) cols.push_back(std::to_string(c));
      return util::StrCat("pi[", util::Join(cols, ","), "](",
                          children_[0]->ToString(), ")");
    }
    case OpKind::kSelection:
      return util::StrCat("sigma[", selection_i_, CmpToString(selection_op_),
                          selection_j_, "](", children_[0]->ToString(), ")");
    case OpKind::kConstTag:
      return util::StrCat("tag[", tag_value_, "](", children_[0]->ToString(), ")");
    case OpKind::kJoin:
    case OpKind::kSemiJoin: {
      std::vector<std::string> parts;
      parts.reserve(atoms_.size());
      for (const auto& atom : atoms_) {
        parts.push_back(
            util::StrCat(atom.left, CmpToString(atom.op), atom.right));
      }
      const char* op = kind_ == OpKind::kJoin ? "join" : "semijoin";
      return util::StrCat(op, "[", util::Join(parts, ";"), "](",
                          children_[0]->ToString(), ", ",
                          children_[1]->ToString(), ")");
    }
  }
  return "?";
}

namespace {

template <typename Pred>
bool AllNodes(const Expr& e, Pred&& pred) {
  if (!pred(e)) return false;
  for (const auto& child : e.children()) {
    if (!AllNodes(*child, pred)) return false;
  }
  return true;
}

bool AtomsAllEq(const Expr& e) {
  return std::all_of(e.atoms().begin(), e.atoms().end(),
                     [](const JoinAtom& a) { return a.op == Cmp::kEq; });
}

}  // namespace

bool IsRa(const Expr& e) {
  return AllNodes(e, [](const Expr& n) { return n.kind() != OpKind::kSemiJoin; });
}

bool IsRaEq(const Expr& e) {
  return AllNodes(e, [](const Expr& n) {
    if (n.kind() == OpKind::kSemiJoin) return false;
    if (n.kind() == OpKind::kJoin) return AtomsAllEq(n);
    return true;
  });
}

bool IsSa(const Expr& e) {
  return AllNodes(e, [](const Expr& n) { return n.kind() != OpKind::kJoin; });
}

bool IsSaEq(const Expr& e) {
  return AllNodes(e, [](const Expr& n) {
    if (n.kind() == OpKind::kJoin) return false;
    if (n.kind() == OpKind::kSemiJoin) return AtomsAllEq(n);
    return true;
  });
}

core::ConstantSet CollectConstants(const Expr& e) {
  core::ConstantSet constants;
  for (const Expr* node : PostOrder(e)) {
    if (node->kind() == OpKind::kConstTag) constants.push_back(node->tag_value());
  }
  std::sort(constants.begin(), constants.end());
  constants.erase(std::unique(constants.begin(), constants.end()), constants.end());
  return constants;
}

std::vector<std::string> CollectRelationNames(const Expr& e) {
  std::vector<std::string> names;
  for (const Expr* node : PostOrder(e)) {
    if (node->kind() == OpKind::kRelation) names.push_back(node->relation_name());
  }
  std::sort(names.begin(), names.end());
  names.erase(std::unique(names.begin(), names.end()), names.end());
  return names;
}

std::string ValidateAgainstSchema(const Expr& e, const core::Schema& schema) {
  for (const Expr* node : PostOrder(e)) {
    if (node->kind() != OpKind::kRelation) continue;
    if (!schema.HasRelation(node->relation_name())) {
      return util::StrCat("unknown relation: ", node->relation_name());
    }
    if (schema.Arity(node->relation_name()) != node->arity()) {
      return util::StrCat("arity mismatch for ", node->relation_name(), ": schema has ",
                          schema.Arity(node->relation_name()), ", expression has ",
                          node->arity());
    }
  }
  return "";
}

namespace {

// One structural fact per combine, mixed in order: the hash
// distinguishes e.g. pi[1,2] from pi[2,1] and join[1=2] from join[2=1].
// The child count is mixed in too, so trees whose flattened token
// streams coincide but whose shapes differ cannot collide even for a
// future variable-arity operator (today every kind has a fixed count).
std::uint64_t HashNode(const Expr& e) {
  std::uint64_t h = util::HashCombine(util::kFnvOffsetBasis,
                                      static_cast<std::uint64_t>(e.kind()));
  h = util::HashCombine(h, e.arity());
  h = util::HashCombine(h, e.children().size());
  switch (e.kind()) {
    case OpKind::kRelation:
      h = util::HashCombine(h, util::FnvHashString(e.relation_name()));
      break;
    case OpKind::kProjection:
      h = util::HashCombine(h, e.projection().size());
      for (std::size_t c : e.projection()) h = util::HashCombine(h, c);
      break;
    case OpKind::kSelection:
      h = util::HashCombine(h, static_cast<std::uint64_t>(e.selection_op()));
      h = util::HashCombine(h, e.selection_i());
      h = util::HashCombine(h, e.selection_j());
      break;
    case OpKind::kConstTag:
      h = util::HashCombine(h, static_cast<std::uint64_t>(e.tag_value()));
      break;
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
      h = util::HashCombine(h, e.atoms().size());
      for (const auto& atom : e.atoms()) {
        h = util::HashCombine(h, atom.left);
        h = util::HashCombine(h, static_cast<std::uint64_t>(atom.op));
        h = util::HashCombine(h, atom.right);
      }
      break;
    case OpKind::kUnion:
    case OpKind::kDifference:
      break;
  }
  return h;
}

}  // namespace

std::uint64_t StructuralHash(const Expr& e) {
  std::uint64_t h = HashNode(e);
  for (const auto& child : e.children()) {
    h = util::HashCombine(h, StructuralHash(*child));
  }
  return h;
}

bool StructuralEqual(const Expr& a, const Expr& b) {
  if (&a == &b) return true;
  if (a.kind() != b.kind() || a.arity() != b.arity()) return false;
  switch (a.kind()) {
    case OpKind::kRelation:
      if (a.relation_name() != b.relation_name()) return false;
      break;
    case OpKind::kProjection:
      if (a.projection() != b.projection()) return false;
      break;
    case OpKind::kSelection:
      if (a.selection_op() != b.selection_op() || a.selection_i() != b.selection_i() ||
          a.selection_j() != b.selection_j()) {
        return false;
      }
      break;
    case OpKind::kConstTag:
      if (a.tag_value() != b.tag_value()) return false;
      break;
    case OpKind::kJoin:
    case OpKind::kSemiJoin:
      if (a.atoms() != b.atoms()) return false;
      break;
    case OpKind::kUnion:
    case OpKind::kDifference:
      break;
  }
  if (a.children().size() != b.children().size()) return false;
  for (std::size_t i = 0; i < a.children().size(); ++i) {
    if (!StructuralEqual(*a.child(i), *b.child(i))) return false;
  }
  return true;
}

std::vector<const Expr*> PostOrder(const Expr& e) {
  std::vector<const Expr*> order;
  std::unordered_set<const Expr*> seen;
  // Iterative post-order over the DAG; each distinct node appears once.
  struct Frame {
    const Expr* node;
    std::size_t next_child;
  };
  std::vector<Frame> stack;
  stack.push_back({&e, 0});
  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next_child < top.node->children().size()) {
      const Expr* child = top.node->children()[top.next_child].get();
      ++top.next_child;
      if (seen.find(child) == seen.end()) stack.push_back({child, 0});
      continue;
    }
    if (seen.insert(top.node).second) order.push_back(top.node);
    stack.pop_back();
  }
  return order;
}

}  // namespace setalg::ra
