// Empirical growth classification — the measurable face of Theorem 17.
//
// Given an expression and a scalable database family, evaluates the
// expression on instances of increasing size, records the maximum
// intermediate-result cardinality (the c(E') of Definition 16), and fits
// the polynomial growth exponent. The dichotomy theorem predicts the
// exponent clusters at 1 (linear) or 2 (quadratic) and nowhere in between.
#ifndef SETALG_RA_GROWTH_H_
#define SETALG_RA_GROWTH_H_

#include <functional>
#include <vector>

#include "core/database.h"
#include "ra/expr.h"
#include "util/stats.h"

namespace setalg::ra {

/// A scalable family of databases: parameter n -> instance of size Θ(n).
using DatabaseFamily = std::function<core::Database(std::size_t)>;

enum class GrowthClass { kLinear, kQuadratic, kUnclear };

const char* GrowthClassToString(GrowthClass c);

/// One measurement point.
struct GrowthSample {
  std::size_t n = 0;                 // Family parameter.
  std::size_t db_size = 0;           // |D| (Definition 15).
  std::size_t max_intermediate = 0;  // max c(E') over subexpressions E'.
  std::size_t output_size = 0;       // |E(D)|.
};

/// The fitted growth report.
struct GrowthReport {
  std::vector<GrowthSample> samples;
  /// Log-log fit of max_intermediate against db_size.
  util::LineFit fit;
  GrowthClass classification = GrowthClass::kUnclear;

  double exponent() const { return fit.slope; }
};

/// Thresholds for classification: exponent <= linear_below → linear,
/// >= quadratic_above → quadratic, otherwise unclear.
struct GrowthThresholds {
  double linear_below = 1.4;
  double quadratic_above = 1.6;
};

/// Evaluates `expr` on family(n) for each n in `ns` and fits the exponent.
GrowthReport MeasureGrowth(const ExprPtr& expr, const DatabaseFamily& family,
                           const std::vector<std::size_t>& ns,
                           const GrowthThresholds& thresholds = {});

/// Geometric sequence of k sizes from lo to hi (inclusive-ish, deduped).
std::vector<std::size_t> GeometricSizes(std::size_t lo, std::size_t hi, std::size_t k);

}  // namespace setalg::ra

#endif  // SETALG_RA_GROWTH_H_
