// Text format for algebra expressions (round-trips with Expr::ToString).
//
// Grammar (whitespace-insensitive):
//   expr     := IDENT                          relation reference
//             | 'union' '(' expr ',' expr ')'
//             | 'diff' '(' expr ',' expr ')'
//             | 'product' '(' expr ',' expr ')'
//             | 'join' '[' atoms ']' '(' expr ',' expr ')'
//             | 'semijoin' '[' atoms ']' '(' expr ',' expr ')'
//             | 'pi' '[' INT (',' INT)* ']' '(' expr ')'
//             | 'sigma' '[' INT ('='|'<') rhs ']' '(' expr ')'
//             | 'tag' '[' SINT ']' '(' expr ')'
//             | '(' expr ')'
//   atoms    := atom (';' atom)* | ε
//   atom     := INT ('='|'!='|'<'|'>') INT
//   rhs      := INT            column index
//             | '#' SINT       constant literal (σ_{i='c'} composite form)
//
// Column indices are 1-based. Relation arities come from the schema.
#ifndef SETALG_RA_PARSE_H_
#define SETALG_RA_PARSE_H_

#include <string>

#include "core/schema.h"
#include "ra/expr.h"
#include "util/result.h"

namespace setalg::ra {

/// Parses an expression; relation names are resolved against `schema`.
util::Result<ExprPtr> Parse(const std::string& text, const core::Schema& schema);

}  // namespace setalg::ra

#endif  // SETALG_RA_PARSE_H_
