// Expression trees for the relational algebra (Definition 1) and the
// semijoin algebra (Definition 2).
//
// One shared AST carries both algebras: RA expressions are those without
// semijoin nodes, SA expressions those without join nodes, and SA= further
// restricts every semijoin condition to equality atoms. All column indices
// in the public API are 1-BASED, matching the paper's notation (π₁, σ₂₌₃,
// join conditions i α j with i a column of the left input and j of the
// right input).
#ifndef SETALG_RA_EXPR_H_
#define SETALG_RA_EXPR_H_

#include <memory>
#include <string>
#include <vector>

#include "core/schema.h"
#include "core/value.h"

namespace setalg::ra {

/// Comparison operators allowed in join/semijoin conditions.
enum class Cmp { kEq, kNeq, kLt, kGt };

/// Returns "=", "!=", "<" or ">".
const char* CmpToString(Cmp cmp);

/// Flips the operator for mirrored conditions (< becomes >, = stays).
Cmp MirrorCmp(Cmp cmp);

/// One conjunct "left α right" of a join condition θ; `left` indexes the
/// left input's columns (1-based), `right` the right input's.
struct JoinAtom {
  std::size_t left;
  Cmp op;
  std::size_t right;

  bool operator==(const JoinAtom&) const = default;
};

enum class OpKind {
  kRelation,    // relation name R
  kUnion,       // E1 ∪ E2
  kDifference,  // E1 − E2
  kProjection,  // π_{i1..ik}(E)
  kSelection,   // σ_{i=j}(E) or σ_{i<j}(E)
  kConstTag,    // τ_c(E)
  kJoin,        // E1 ⋈_θ E2 (θ empty ⇒ cartesian product)
  kSemiJoin,    // E1 ⋉_θ E2
};

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// An immutable expression node. Build via the free functions below; every
/// constructor path validates arities and column indices eagerly.
class Expr {
 public:
  OpKind kind() const { return kind_; }
  std::size_t arity() const { return arity_; }

  /// Children: none for kRelation, one for π/σ/τ, two otherwise.
  const std::vector<ExprPtr>& children() const { return children_; }
  const ExprPtr& child(std::size_t i) const { return children_[i]; }

  /// kRelation payload.
  const std::string& relation_name() const { return relation_name_; }

  /// kProjection payload: 1-based column list (repeats allowed, per Def. 1).
  const std::vector<std::size_t>& projection() const { return projection_; }

  /// kSelection payload: the predicate is `column_i op column_j` with op
  /// restricted to kEq or kLt by Definition 1.
  Cmp selection_op() const { return selection_op_; }
  std::size_t selection_i() const { return selection_i_; }
  std::size_t selection_j() const { return selection_j_; }

  /// kConstTag payload.
  core::Value tag_value() const { return tag_value_; }

  /// kJoin / kSemiJoin payload: the conjunction θ.
  const std::vector<JoinAtom>& atoms() const { return atoms_; }

  /// Number of nodes in the tree (shared subtrees counted once per use).
  std::size_t NumNodes() const;

  /// Textual form in the parser's grammar (round-trips through Parse()).
  std::string ToString() const;

 private:
  friend ExprPtr MakeExpr(Expr e);
  Expr() = default;

  OpKind kind_ = OpKind::kRelation;
  std::size_t arity_ = 0;
  std::vector<ExprPtr> children_;
  std::string relation_name_;
  std::vector<std::size_t> projection_;
  Cmp selection_op_ = Cmp::kEq;
  std::size_t selection_i_ = 0;
  std::size_t selection_j_ = 0;
  core::Value tag_value_ = 0;
  std::vector<JoinAtom> atoms_;

  friend class ExprFactory;
};

// ---------------------------------------------------------------------------
// Builders (all column indices 1-based).
// ---------------------------------------------------------------------------

/// Relation name of the given arity.
ExprPtr Rel(const std::string& name, std::size_t arity);

/// E1 ∪ E2; arities must agree.
ExprPtr Union(ExprPtr left, ExprPtr right);

/// E1 − E2; arities must agree.
ExprPtr Diff(ExprPtr left, ExprPtr right);

/// π_{columns}(input); repeats and reordering allowed.
ExprPtr Project(ExprPtr input, std::vector<std::size_t> columns);

/// σ_{i=j}(input).
ExprPtr SelectEq(ExprPtr input, std::size_t i, std::size_t j);

/// σ_{i<j}(input).
ExprPtr SelectLt(ExprPtr input, std::size_t i, std::size_t j);

/// τ_c(input): appends the constant c as a new last column.
ExprPtr Tag(ExprPtr input, core::Value c);

/// E1 ⋈_θ E2. An empty θ is the cartesian product.
ExprPtr Join(ExprPtr left, ExprPtr right, std::vector<JoinAtom> atoms);

/// E1 ⋉_θ E2 (semijoin).
ExprPtr SemiJoin(ExprPtr left, ExprPtr right, std::vector<JoinAtom> atoms);

/// Cartesian product: Join with empty θ.
ExprPtr Product(ExprPtr left, ExprPtr right);

/// Derived form σ_{i='c'}(E) := π_{1..n}(σ_{i=n+1}(τ_c(E))) from the paper.
ExprPtr SelectConst(ExprPtr input, std::size_t i, core::Value c);

/// Equijoin convenience: all atoms use '='.
ExprPtr EquiJoin(ExprPtr left, ExprPtr right,
                 std::vector<std::pair<std::size_t, std::size_t>> pairs);

/// Equi-semijoin convenience.
ExprPtr EquiSemiJoin(ExprPtr left, ExprPtr right,
                     std::vector<std::pair<std::size_t, std::size_t>> pairs);

// ---------------------------------------------------------------------------
// Classification and inspection.
// ---------------------------------------------------------------------------

/// True iff the expression is in RA (no semijoin nodes) — Definition 1.
bool IsRa(const Expr& e);

/// True iff it is in RA= (RA and every join condition uses only '=').
bool IsRaEq(const Expr& e);

/// True iff the expression is in SA (no join nodes) — Definition 2.
bool IsSa(const Expr& e);

/// True iff it is in SA= (SA and every semijoin condition uses only '=').
bool IsSaEq(const Expr& e);

/// The constants appearing in the expression (from τ tags), sorted unique —
/// the set C such that E is "an expression with constants in C".
core::ConstantSet CollectConstants(const Expr& e);

/// All relation names referenced by the expression.
std::vector<std::string> CollectRelationNames(const Expr& e);

/// Checks that every relation reference matches the schema (name exists and
/// arity agrees). Returns an error description or empty string if valid.
std::string ValidateAgainstSchema(const Expr& e, const core::Schema& schema);

/// Enumerates every distinct node (by pointer identity) in the DAG rooted
/// at `e`, parents after children (post-order).
std::vector<const Expr*> PostOrder(const Expr& e);

// ---------------------------------------------------------------------------
// Structural hashing and equality.
//
// Two expression trees are structurally equal iff they evaluate the same
// way on every database: same operator tree, same relation names, same
// column lists / conditions / constants. StructuralHash respects that
// equivalence and is computed from the tree alone (FNV/SplitMix over a
// canonical encoding — never from pointers or std::hash, so the value is
// identical across processes and library versions; the engine's plan
// cache relies on that for deterministic cache statistics).
// ---------------------------------------------------------------------------

/// Order-dependent 64-bit structural hash of the tree rooted at `e`.
std::uint64_t StructuralHash(const Expr& e);

/// True iff `a` and `b` are structurally identical trees (pointer
/// equality short-circuits; shared subtrees compare once per path).
bool StructuralEqual(const Expr& a, const Expr& b);

/// Hash functor over ExprPtr for unordered containers keyed on structure
/// (e.g. the engine's plan cache). Null hashes to 0.
struct ExprHash {
  std::size_t operator()(const ExprPtr& e) const {
    return e == nullptr ? 0 : static_cast<std::size_t>(StructuralHash(*e));
  }
};

/// Equality functor paired with ExprHash. Two nulls compare equal.
struct ExprEqual {
  bool operator()(const ExprPtr& a, const ExprPtr& b) const {
    if (a == b) return true;
    if (a == nullptr || b == nullptr) return false;
    return StructuralEqual(*a, *b);
  }
};

}  // namespace setalg::ra

#endif  // SETALG_RA_EXPR_H_
