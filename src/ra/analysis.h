// Static analyses from Section 3 of the paper:
//   - constrained/unconstrained join positions (Definition 20),
//   - free values of a tuple w.r.t. a join (Definition 22),
//   - provably-constant output columns (used by the Theorem 18 rewriter).
#ifndef SETALG_RA_ANALYSIS_H_
#define SETALG_RA_ANALYSIS_H_

#include <map>
#include <vector>

#include "core/tuple.h"
#include "core/value.h"
#include "ra/expr.h"

namespace setalg::ra {

/// The sets of Definition 20 for a join/semijoin node E = E1 θ E2.
/// Positions are 1-based; constrained_ℓ collects the positions mentioned in
/// θ's equality atoms on side ℓ, and unc_ℓ is the complement.
struct ConstrainedSets {
  std::vector<std::size_t> constrained1;
  std::vector<std::size_t> unc1;
  std::vector<std::size_t> constrained2;
  std::vector<std::size_t> unc2;
};

/// Computes Definition 20 for a node of kind kJoin or kSemiJoin.
ConstrainedSets ComputeConstrainedSets(const Expr& join);

/// Definition 22: the free values of a tuple d̄ ∈ E_side(D) w.r.t. the join
/// E = E1 θ E2 with constants in C. A value is free iff it occurs in d̄, is
/// not at any equality-constrained position, is not a constant, and does
/// not lie in a finite interval [c_i, c_{i+1}] between consecutive
/// constants. Over the integer universe every such interval is finite, so
/// the last condition excludes exactly the values in [min C, max C].
///
/// `side` is 1 for tuples of E1 and 2 for tuples of E2. `constants` must be
/// sorted (as produced by CollectConstants).
std::vector<core::Value> FreeValues(const Expr& join, int side, core::TupleView tuple,
                                    const core::ConstantSet& constants);

/// Columns of `e` that provably hold one fixed constant on every database,
/// as a map from 1-based column index to that constant. Sound but not
/// complete: derived from τ tags propagated through the operators.
std::map<std::size_t, core::Value> ConstantColumns(const Expr& e);

}  // namespace setalg::ra

#endif  // SETALG_RA_ANALYSIS_H_
