// Evaluation of algebra expressions over a database, with optional
// instrumentation of intermediate-result sizes.
//
// Definition 16 classifies an expression by the cardinalities of ALL its
// subexpressions' outputs; EvalStats records exactly those cardinalities
// (each distinct subexpression once), which is what the dichotomy
// experiments measure.
//
// Eval is the semantic REFERENCE: it delegates to engine::Engine under
// EngineOptions::Reference(), a 1:1 lowering with every planner rewrite
// disabled, so each logical node is materialized as written. Use
// engine::Engine (engine/engine.h) directly for the pattern-aware planner
// that routes e.g. the classic division expression to a sub-quadratic
// physical operator.
#ifndef SETALG_RA_EVAL_H_
#define SETALG_RA_EVAL_H_

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/relation.h"
#include "ra/expr.h"

namespace setalg::ra {

/// Per-subexpression output cardinality.
struct NodeStats {
  const Expr* node = nullptr;
  std::size_t output_size = 0;
};

/// Instrumentation collected during one evaluation.
struct EvalStats {
  /// One entry per distinct subexpression (post-order).
  std::vector<NodeStats> nodes;
  /// max over subexpressions of |E'(D)| — the quantity c(E') of Def. 16.
  std::size_t max_intermediate = 0;
  /// Sum of all subexpression output cardinalities.
  std::size_t total_intermediate = 0;
  /// Rows materialized by join/semijoin nodes before deduplication —
  /// a proxy for work done.
  std::uint64_t join_rows_emitted = 0;
};

/// Evaluates `expr` on `db`. Relation references are resolved against the
/// database (names and arities must match; checked). Shared subtrees are
/// evaluated once. If `stats` is non-null it is filled with per-node
/// cardinalities.
core::Relation Eval(const ExprPtr& expr, const core::Database& db,
                    EvalStats* stats = nullptr);

/// Evaluates and returns only the maximum intermediate-result size.
std::size_t MaxIntermediateSize(const ExprPtr& expr, const core::Database& db);

}  // namespace setalg::ra

#endif  // SETALG_RA_EVAL_H_
