#include "ra/eval.h"

#include <utility>

#include "engine/engine.h"
#include "util/check.h"

namespace setalg::ra {

// Eval is a thin wrapper over the engine's reference lowering: a 1:1
// logical→physical mapping with every planner rewrite disabled, which
// reproduces the historical tree-walker exactly — same results, same
// per-node cardinalities (Definition 16), same join_rows_emitted. The
// pattern-aware planner lives behind engine::Engine with default options.
core::Relation Eval(const ExprPtr& expr, const core::Database& db, EvalStats* stats) {
  auto result = engine::Engine::Run(expr, db, engine::EngineOptions::Reference());
  SETALG_CHECK_STREAM(result.ok()) << result.error();
  if (stats != nullptr) *stats = engine::ToEvalStats(result->stats);
  return std::move(result->relation);
}

std::size_t MaxIntermediateSize(const ExprPtr& expr, const core::Database& db) {
  EvalStats stats;
  Eval(expr, db, &stats);
  return stats.max_intermediate;
}

}  // namespace setalg::ra
