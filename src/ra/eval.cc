#include "ra/eval.h"

#include <algorithm>
#include <unordered_map>

#include "core/index.h"
#include "util/check.h"

namespace setalg::ra {
namespace {

bool CompareValues(core::Value a, Cmp op, core::Value b) {
  switch (op) {
    case Cmp::kEq:
      return a == b;
    case Cmp::kNeq:
      return a != b;
    case Cmp::kLt:
      return a < b;
    case Cmp::kGt:
      return a > b;
  }
  return false;
}

// Checks the non-equality conjuncts of θ against a pair of rows.
bool ResidualHolds(const std::vector<JoinAtom>& residual, core::TupleView left,
                   core::TupleView right) {
  for (const auto& atom : residual) {
    if (!CompareValues(left[atom.left - 1], atom.op, right[atom.right - 1])) {
      return false;
    }
  }
  return true;
}

class Evaluator {
 public:
  Evaluator(const core::Database* db, EvalStats* stats) : db_(db), stats_(stats) {}

  const core::Relation& Eval(const ExprPtr& expr) {
    auto it = memo_.find(expr.get());
    if (it != memo_.end()) return it->second;
    core::Relation result = Compute(*expr);
    result.Normalize();
    if (stats_ != nullptr) {
      stats_->nodes.push_back({expr.get(), result.size()});
      stats_->max_intermediate = std::max(stats_->max_intermediate, result.size());
      stats_->total_intermediate += result.size();
    }
    return memo_.emplace(expr.get(), std::move(result)).first->second;
  }

 private:
  core::Relation Compute(const Expr& e) {
    switch (e.kind()) {
      case OpKind::kRelation: {
        SETALG_CHECK_STREAM(db_->schema().HasRelation(e.relation_name()))
            << "expression references unknown relation " << e.relation_name();
        const core::Relation& r = db_->relation(e.relation_name());
        SETALG_CHECK_EQ(r.arity(), e.arity());
        return r;  // Copy; relations are modest and this keeps memo simple.
      }
      case OpKind::kUnion:
        return core::Union(Eval(e.child(0)), Eval(e.child(1)));
      case OpKind::kDifference:
        return core::Difference(Eval(e.child(0)), Eval(e.child(1)));
      case OpKind::kProjection:
        return EvalProjection(e);
      case OpKind::kSelection:
        return EvalSelection(e);
      case OpKind::kConstTag:
        return EvalConstTag(e);
      case OpKind::kJoin:
        return EvalJoin(e);
      case OpKind::kSemiJoin:
        return EvalSemiJoin(e);
    }
    SETALG_CHECK_STREAM(false) << "unreachable";
    return core::Relation(0);
  }

  core::Relation EvalProjection(const Expr& e) {
    const core::Relation& in = Eval(e.child(0));
    core::Relation out(e.arity());
    out.Reserve(in.size());
    core::Tuple row(e.arity());
    for (std::size_t i = 0; i < in.size(); ++i) {
      core::TupleView t = in.tuple(i);
      for (std::size_t k = 0; k < e.projection().size(); ++k) {
        row[k] = t[e.projection()[k] - 1];
      }
      out.Add(row);
    }
    return out;
  }

  core::Relation EvalSelection(const Expr& e) {
    const core::Relation& in = Eval(e.child(0));
    core::Relation out(e.arity());
    for (std::size_t i = 0; i < in.size(); ++i) {
      core::TupleView t = in.tuple(i);
      if (CompareValues(t[e.selection_i() - 1], e.selection_op(),
                        t[e.selection_j() - 1])) {
        out.Add(t);
      }
    }
    return out;
  }

  core::Relation EvalConstTag(const Expr& e) {
    const core::Relation& in = Eval(e.child(0));
    core::Relation out(e.arity());
    out.Reserve(in.size());
    core::Tuple row(e.arity());
    for (std::size_t i = 0; i < in.size(); ++i) {
      core::TupleView t = in.tuple(i);
      std::copy(t.begin(), t.end(), row.begin());
      row.back() = e.tag_value();
      out.Add(row);
    }
    return out;
  }

  // Splits θ into its equality part (used for hashing) and the residual.
  static void SplitAtoms(const std::vector<JoinAtom>& atoms,
                         std::vector<JoinAtom>* eq, std::vector<JoinAtom>* residual) {
    for (const auto& atom : atoms) {
      (atom.op == Cmp::kEq ? eq : residual)->push_back(atom);
    }
  }

  core::Relation EvalJoin(const Expr& e) {
    const core::Relation& left = Eval(e.child(0));
    const core::Relation& right = Eval(e.child(1));
    core::Relation out(e.arity());
    if (left.empty() || right.empty()) return out;

    std::vector<JoinAtom> eq, residual;
    SplitAtoms(e.atoms(), &eq, &residual);

    core::Tuple row(e.arity());
    const std::size_t n = left.arity();
    auto emit = [&](core::TupleView lt, core::TupleView rt) {
      std::copy(lt.begin(), lt.end(), row.begin());
      std::copy(rt.begin(), rt.end(), row.begin() + static_cast<std::ptrdiff_t>(n));
      out.Add(row);
      if (stats_ != nullptr) ++stats_->join_rows_emitted;
    };

    if (!eq.empty()) {
      std::vector<std::size_t> right_cols;
      right_cols.reserve(eq.size());
      for (const auto& atom : eq) right_cols.push_back(atom.right - 1);
      core::HashIndex index(&right, right_cols);
      core::Tuple key(eq.size());
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
        index.ForEachMatch(key, [&](std::size_t r) {
          core::TupleView rt = right.tuple(r);
          if (ResidualHolds(residual, lt, rt)) emit(lt, rt);
        });
      }
    } else {
      // Pure inequality (or cartesian) join: nested loop.
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t j = 0; j < right.size(); ++j) {
          core::TupleView rt = right.tuple(j);
          if (ResidualHolds(residual, lt, rt)) emit(lt, rt);
        }
      }
    }
    return out;
  }

  core::Relation EvalSemiJoin(const Expr& e) {
    const core::Relation& left = Eval(e.child(0));
    const core::Relation& right = Eval(e.child(1));
    core::Relation out(e.arity());
    if (left.empty()) return out;

    std::vector<JoinAtom> eq, residual;
    SplitAtoms(e.atoms(), &eq, &residual);

    if (right.empty()) return out;  // ∃b̄ fails everywhere.

    if (!eq.empty()) {
      std::vector<std::size_t> right_cols;
      right_cols.reserve(eq.size());
      for (const auto& atom : eq) right_cols.push_back(atom.right - 1);
      core::HashIndex index(&right, right_cols);
      core::Tuple key(eq.size());
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t k = 0; k < eq.size(); ++k) key[k] = lt[eq[k].left - 1];
        bool found = false;
        index.ForEachMatch(key, [&](std::size_t r) {
          if (!found && ResidualHolds(residual, lt, right.tuple(r))) found = true;
        });
        if (found) out.Add(lt);
      }
    } else if (residual.empty()) {
      // θ empty and right nonempty: every left tuple survives.
      return left;
    } else {
      for (std::size_t i = 0; i < left.size(); ++i) {
        core::TupleView lt = left.tuple(i);
        for (std::size_t j = 0; j < right.size(); ++j) {
          if (ResidualHolds(residual, lt, right.tuple(j))) {
            out.Add(lt);
            break;
          }
        }
      }
    }
    return out;
  }

  const core::Database* db_;
  EvalStats* stats_;
  std::unordered_map<const Expr*, core::Relation> memo_;
};

}  // namespace

core::Relation Eval(const ExprPtr& expr, const core::Database& db, EvalStats* stats) {
  Evaluator evaluator(&db, stats);
  return evaluator.Eval(expr);
}

std::size_t MaxIntermediateSize(const ExprPtr& expr, const core::Database& db) {
  EvalStats stats;
  Eval(expr, db, &stats);
  return stats.max_intermediate;
}

}  // namespace setalg::ra
