#include "ra/analysis.h"

#include <algorithm>
#include <set>

#include "util/check.h"

namespace setalg::ra {

ConstrainedSets ComputeConstrainedSets(const Expr& join) {
  SETALG_CHECK(join.kind() == OpKind::kJoin || join.kind() == OpKind::kSemiJoin);
  const std::size_t n = join.child(0)->arity();
  const std::size_t m = join.child(1)->arity();
  std::set<std::size_t> c1, c2;
  for (const auto& atom : join.atoms()) {
    if (atom.op == Cmp::kEq) {
      c1.insert(atom.left);
      c2.insert(atom.right);
    }
  }
  ConstrainedSets sets;
  sets.constrained1.assign(c1.begin(), c1.end());
  sets.constrained2.assign(c2.begin(), c2.end());
  for (std::size_t i = 1; i <= n; ++i) {
    if (c1.find(i) == c1.end()) sets.unc1.push_back(i);
  }
  for (std::size_t j = 1; j <= m; ++j) {
    if (c2.find(j) == c2.end()) sets.unc2.push_back(j);
  }
  return sets;
}

std::vector<core::Value> FreeValues(const Expr& join, int side, core::TupleView tuple,
                                    const core::ConstantSet& constants) {
  SETALG_CHECK(side == 1 || side == 2);
  SETALG_DCHECK(std::is_sorted(constants.begin(), constants.end()));
  const ConstrainedSets sets = ComputeConstrainedSets(join);
  const auto& constrained = side == 1 ? sets.constrained1 : sets.constrained2;
  SETALG_CHECK_EQ(tuple.size(), join.child(side == 1 ? 0 : 1)->arity());

  // Values at equality-constrained positions.
  std::set<core::Value> bound;
  for (std::size_t pos : constrained) bound.insert(tuple[pos - 1]);

  std::set<core::Value> free_values;
  for (core::Value v : tuple) {
    if (bound.count(v) > 0) continue;
    if (!constants.empty() && v >= constants.front() && v <= constants.back()) {
      // v ∈ C or v lies in a (finite, over ℤ) interval [c_i, c_{i+1}].
      continue;
    }
    free_values.insert(v);
  }
  return std::vector<core::Value>(free_values.begin(), free_values.end());
}

std::map<std::size_t, core::Value> ConstantColumns(const Expr& e) {
  using ColumnMap = std::map<std::size_t, core::Value>;
  switch (e.kind()) {
    case OpKind::kRelation:
      return {};
    case OpKind::kConstTag: {
      ColumnMap map = ConstantColumns(*e.child(0));
      map[e.arity()] = e.tag_value();
      return map;
    }
    case OpKind::kProjection: {
      const ColumnMap child = ConstantColumns(*e.child(0));
      ColumnMap map;
      for (std::size_t k = 0; k < e.projection().size(); ++k) {
        auto it = child.find(e.projection()[k]);
        if (it != child.end()) map[k + 1] = it->second;
      }
      return map;
    }
    case OpKind::kSelection: {
      ColumnMap map = ConstantColumns(*e.child(0));
      if (e.selection_op() == Cmp::kEq) {
        // σ_{i=j}: constancy propagates across the equated columns.
        auto i_it = map.find(e.selection_i());
        auto j_it = map.find(e.selection_j());
        if (i_it != map.end() && j_it == map.end()) {
          map[e.selection_j()] = i_it->second;
        } else if (j_it != map.end() && i_it == map.end()) {
          map[e.selection_i()] = j_it->second;
        }
      }
      return map;
    }
    case OpKind::kUnion: {
      const ColumnMap left = ConstantColumns(*e.child(0));
      const ColumnMap right = ConstantColumns(*e.child(1));
      ColumnMap map;
      for (const auto& [col, value] : left) {
        auto it = right.find(col);
        if (it != right.end() && it->second == value) map[col] = value;
      }
      return map;
    }
    case OpKind::kDifference:
    case OpKind::kSemiJoin:
      // Output tuples are a subset of the left input's.
      return ConstantColumns(*e.child(0));
    case OpKind::kJoin: {
      ColumnMap map = ConstantColumns(*e.child(0));
      const std::size_t n = e.child(0)->arity();
      for (const auto& [col, value] : ConstantColumns(*e.child(1))) {
        map[col + n] = value;
      }
      // Equality atoms propagate constancy across sides.
      for (const auto& atom : e.atoms()) {
        if (atom.op != Cmp::kEq) continue;
        auto l_it = map.find(atom.left);
        auto r_it = map.find(atom.right + n);
        if (l_it != map.end() && r_it == map.end()) {
          map[atom.right + n] = l_it->second;
        } else if (r_it != map.end() && l_it == map.end()) {
          map[atom.left] = r_it->second;
        }
      }
      return map;
    }
  }
  return {};
}

}  // namespace setalg::ra
