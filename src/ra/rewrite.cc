#include "ra/rewrite.h"

#include <algorithm>
#include <map>
#include <set>

#include "ra/analysis.h"
#include "util/check.h"

namespace setalg::ra {
namespace {

std::vector<std::size_t> IdentityColumns(std::size_t arity) {
  std::vector<std::size_t> columns(arity);
  for (std::size_t i = 0; i < arity; ++i) columns[i] = i + 1;
  return columns;
}

// σ_{i op k} on two columns of `input`, expressing ≠ and > through the
// primitive selections (Definition 1 only has σ_{i=j} and σ_{i<j}).
ExprPtr SelectColumns(ExprPtr input, std::size_t i, Cmp op, std::size_t k) {
  switch (op) {
    case Cmp::kEq:
      return SelectEq(std::move(input), i, k);
    case Cmp::kLt:
      return SelectLt(std::move(input), i, k);
    case Cmp::kGt:
      return SelectLt(std::move(input), k, i);
    case Cmp::kNeq: {
      ExprPtr eq = SelectEq(input, i, k);
      return Diff(std::move(input), std::move(eq));
    }
  }
  return input;
}

// σ_{i op 'c'}: tag the constant, select against the tagged column, drop it.
ExprPtr SelectCmpConst(ExprPtr input, std::size_t i, Cmp op, core::Value c) {
  const std::size_t n = input->arity();
  ExprPtr tagged = Tag(std::move(input), c);
  return Project(SelectColumns(std::move(tagged), i, op, n + 1), IdentityColumns(n));
}

// σ_{'c' op j}: mirror of the above (constant on the left of the operator).
ExprPtr SelectConstCmp(ExprPtr input, core::Value c, Cmp op, std::size_t j) {
  const std::size_t n = input->arity();
  ExprPtr tagged = Tag(std::move(input), c);
  return Project(SelectColumns(std::move(tagged), n + 1, op, j), IdentityColumns(n));
}

void SplitAtoms(const std::vector<JoinAtom>& atoms, std::vector<JoinAtom>* eq,
                std::vector<JoinAtom>* residual) {
  for (const auto& atom : atoms) {
    (atom.op == Cmp::kEq ? eq : residual)->push_back(atom);
  }
}

}  // namespace

ExprPtr SemiJoinToJoin(const ExprPtr& e) {
  std::vector<ExprPtr> children;
  children.reserve(e->children().size());
  for (const auto& child : e->children()) children.push_back(SemiJoinToJoin(child));

  switch (e->kind()) {
    case OpKind::kRelation:
      return e;
    case OpKind::kUnion:
      return Union(children[0], children[1]);
    case OpKind::kDifference:
      return Diff(children[0], children[1]);
    case OpKind::kProjection:
      return Project(children[0], e->projection());
    case OpKind::kSelection:
      return e->selection_op() == Cmp::kEq
                 ? SelectEq(children[0], e->selection_i(), e->selection_j())
                 : SelectLt(children[0], e->selection_i(), e->selection_j());
    case OpKind::kConstTag:
      return Tag(children[0], e->tag_value());
    case OpKind::kJoin:
      return Join(children[0], children[1], e->atoms());
    case OpKind::kSemiJoin: {
      const std::size_t n = children[0]->arity();
      const bool all_eq =
          std::all_of(e->atoms().begin(), e->atoms().end(),
                      [](const JoinAtom& a) { return a.op == Cmp::kEq; });
      if (all_eq) {
        // Linear embedding: project the right side onto the (distinct)
        // joined columns first, so each left row matches at most one
        // right row.
        std::vector<std::size_t> right_cols;
        for (const auto& atom : e->atoms()) right_cols.push_back(atom.right);
        std::sort(right_cols.begin(), right_cols.end());
        right_cols.erase(std::unique(right_cols.begin(), right_cols.end()),
                         right_cols.end());
        std::vector<JoinAtom> atoms;
        for (const auto& atom : e->atoms()) {
          const std::size_t pos =
              static_cast<std::size_t>(std::lower_bound(right_cols.begin(),
                                                        right_cols.end(), atom.right) -
                                       right_cols.begin()) +
              1;
          atoms.push_back({atom.left, Cmp::kEq, pos});
        }
        ExprPtr projected_right = Project(children[1], right_cols);
        return Project(Join(children[0], std::move(projected_right), std::move(atoms)),
                       IdentityColumns(n));
      }
      // General embedding (not linear): π_{1..n}(E1 ⋈θ E2).
      return Project(Join(children[0], children[1], e->atoms()), IdentityColumns(n));
    }
  }
  SETALG_CHECK_STREAM(false) << "unreachable";
  return e;
}

namespace {

// Builds the Z2-form SA= expression for a join node whose right side has no
// free positions: every right column is either equality-constrained (value
// copied from the left via g) or provably a constant.
ExprPtr BuildRightDetermined(const Expr& join, ExprPtr left, ExprPtr right,
                             const ConstrainedSets& sets,
                             const std::map<std::size_t, core::Value>& right_const) {
  const std::size_t n = join.child(0)->arity();
  const std::size_t m = join.child(1)->arity();
  std::vector<JoinAtom> eq, residual;
  SplitAtoms(join.atoms(), &eq, &residual);

  // g(j) = min { i | (i,j) ∈ θ= } for constrained right positions.
  std::map<std::size_t, std::size_t> g;
  for (const auto& atom : eq) {
    auto it = g.find(atom.right);
    if (it == g.end() || atom.left < it->second) g[atom.right] = atom.left;
  }

  ExprPtr cur = SemiJoin(std::move(left), std::move(right), eq);  // arity n, SA=.

  // Enforce the non-equality conjuncts on the reconstructed pair.
  for (const auto& atom : residual) {
    auto g_it = g.find(atom.right);
    if (g_it != g.end()) {
      cur = SelectColumns(std::move(cur), atom.left, atom.op, g_it->second);
    } else {
      const core::Value c = right_const.at(atom.right);
      cur = SelectCmpConst(std::move(cur), atom.left, atom.op, c);
    }
  }

  // Reconstruct the right tuple: tag the constants needed by unconstrained
  // positions, then project (left columns, then the reconstruction of each
  // right column).
  std::vector<core::Value> tags;
  for (std::size_t j : sets.unc2) tags.push_back(right_const.at(j));
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  for (core::Value v : tags) cur = Tag(std::move(cur), v);

  std::vector<std::size_t> out_columns = IdentityColumns(n);
  for (std::size_t j = 1; j <= m; ++j) {
    auto g_it = g.find(j);
    if (g_it != g.end()) {
      out_columns.push_back(g_it->second);
    } else {
      const core::Value c = right_const.at(j);
      const std::size_t tag_pos = static_cast<std::size_t>(
          std::lower_bound(tags.begin(), tags.end(), c) - tags.begin());
      out_columns.push_back(n + tag_pos + 1);
    }
  }
  return Project(std::move(cur), std::move(out_columns));
}

// Mirror case: the left side has no free positions; keep the right tuples
// and reconstruct the left tuple from them.
ExprPtr BuildLeftDetermined(const Expr& join, ExprPtr left, ExprPtr right,
                            const ConstrainedSets& sets,
                            const std::map<std::size_t, core::Value>& left_const) {
  const std::size_t n = join.child(0)->arity();
  const std::size_t m = join.child(1)->arity();
  std::vector<JoinAtom> eq, residual;
  SplitAtoms(join.atoms(), &eq, &residual);

  // g2(i) = min { j | (i,j) ∈ θ= } for constrained left positions.
  std::map<std::size_t, std::size_t> g2;
  for (const auto& atom : eq) {
    auto it = g2.find(atom.left);
    if (it == g2.end() || atom.right < it->second) g2[atom.left] = atom.right;
  }

  // Mirror the equality atoms: the semijoin now filters the right side.
  std::vector<JoinAtom> mirrored;
  mirrored.reserve(eq.size());
  for (const auto& atom : eq) mirrored.push_back({atom.right, Cmp::kEq, atom.left});

  ExprPtr cur = SemiJoin(std::move(right), std::move(left), mirrored);  // arity m.

  for (const auto& atom : residual) {
    auto g_it = g2.find(atom.left);
    if (g_it != g2.end()) {
      // a_i op b_j becomes b_{g2(i)} op b_j on the kept right tuples.
      cur = SelectColumns(std::move(cur), g_it->second, atom.op, atom.right);
    } else {
      const core::Value c = left_const.at(atom.left);
      cur = SelectConstCmp(std::move(cur), c, atom.op, atom.right);
    }
  }

  std::vector<core::Value> tags;
  for (std::size_t i : sets.unc1) tags.push_back(left_const.at(i));
  std::sort(tags.begin(), tags.end());
  tags.erase(std::unique(tags.begin(), tags.end()), tags.end());
  for (core::Value v : tags) cur = Tag(std::move(cur), v);

  std::vector<std::size_t> out_columns;
  for (std::size_t i = 1; i <= n; ++i) {
    auto g_it = g2.find(i);
    if (g_it != g2.end()) {
      out_columns.push_back(g_it->second);
    } else {
      const core::Value c = left_const.at(i);
      const std::size_t tag_pos = static_cast<std::size_t>(
          std::lower_bound(tags.begin(), tags.end(), c) - tags.begin());
      out_columns.push_back(m + tag_pos + 1);
    }
  }
  for (std::size_t j = 1; j <= m; ++j) out_columns.push_back(j);
  return Project(std::move(cur), std::move(out_columns));
}

std::optional<ExprPtr> RewriteNode(const ExprPtr& e) {
  std::vector<ExprPtr> children;
  children.reserve(e->children().size());
  for (const auto& child : e->children()) {
    auto rewritten = RewriteNode(child);
    if (!rewritten.has_value()) return std::nullopt;
    children.push_back(std::move(*rewritten));
  }

  switch (e->kind()) {
    case OpKind::kRelation:
      return e;
    case OpKind::kUnion:
      return Union(children[0], children[1]);
    case OpKind::kDifference:
      return Diff(children[0], children[1]);
    case OpKind::kProjection:
      return Project(children[0], e->projection());
    case OpKind::kSelection:
      return e->selection_op() == Cmp::kEq
                 ? SelectEq(children[0], e->selection_i(), e->selection_j())
                 : SelectLt(children[0], e->selection_i(), e->selection_j());
    case OpKind::kConstTag:
      return Tag(children[0], e->tag_value());
    case OpKind::kSemiJoin:
      // The input is required to be RA.
      return std::nullopt;
    case OpKind::kJoin: {
      const ConstrainedSets sets = ComputeConstrainedSets(*e);
      const auto left_const = ConstantColumns(*e->child(0));
      const auto right_const = ConstantColumns(*e->child(1));
      const bool right_determined =
          std::all_of(sets.unc2.begin(), sets.unc2.end(), [&](std::size_t j) {
            return right_const.find(j) != right_const.end();
          });
      if (right_determined) {
        return BuildRightDetermined(*e, children[0], children[1], sets, right_const);
      }
      const bool left_determined =
          std::all_of(sets.unc1.begin(), sets.unc1.end(), [&](std::size_t i) {
            return left_const.find(i) != left_const.end();
          });
      if (left_determined) {
        return BuildLeftDetermined(*e, children[0], children[1], sets, left_const);
      }
      return std::nullopt;
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<ExprPtr> RewriteRaToSaEq(const ExprPtr& e) {
  SETALG_CHECK_STREAM(IsRa(*e)) << "RewriteRaToSaEq requires an RA expression";
  auto result = RewriteNode(e);
  if (result.has_value()) {
    SETALG_CHECK_STREAM(IsSaEq(**result))
        << "rewriter produced a non-SA= expression: " << (*result)->ToString();
  }
  return result;
}

}  // namespace setalg::ra
